package vif

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/lb"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rpki"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// engineTraffic builds the usual mixed workload: DNS amplification (hits
// the drop rule) interleaved with legitimate HTTPS.
func engineTraffic(n int, seed int64) (descs []Descriptor, attack int) {
	rng := rand.New(rand.NewSource(seed))
	descs = make([]Descriptor, n)
	for i := range descs {
		var tp FiveTuple
		if i%2 == 0 {
			tp = FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.10"),
				SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
			}
			attack++
		} else {
			tp = FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.10"),
				SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443, Proto: packet.ProtoTCP,
			}
		}
		descs[i] = Descriptor{Tuple: tp, Size: 512}
	}
	return descs, attack
}

func TestEngineEndToEndHonest(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}

	eng, err := session.StartEngine(EngineConfig{
		Deliver: func(d Descriptor) { session.ObserveDelivered(d.Tuple) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !session.EngineRunning() {
		t.Fatal("engine not running after StartEngine")
	}

	// Serial paths must refuse while the engine owns the fleet.
	if _, err := session.AuditOutgoing(); !errors.Is(err, ErrEngineRunning) {
		t.Fatalf("AuditOutgoing during engine mode: %v", err)
	}
	if err := session.Reconfigure(); !errors.Is(err, ErrEngineRunning) {
		t.Fatalf("Reconfigure during engine mode: %v", err)
	}
	if v := session.Process(Descriptor{Tuple: FiveTuple{Proto: packet.ProtoUDP}, Size: 64}); v != VerdictDrop {
		t.Fatalf("Process during engine mode returned %v", v)
	}
	if _, err := session.StartEngine(EngineConfig{}); !errors.Is(err, ErrEngineRunning) {
		t.Fatalf("second StartEngine: %v", err)
	}

	descs, attack := engineTraffic(4000, 1)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(descs); i += 2 {
				for !eng.Inject(descs[i]) {
				}
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()

	m := eng.Metrics()
	if m.Processed != uint64(len(descs)) {
		t.Fatalf("processed %d of %d", m.Processed, len(descs))
	}
	if m.Dropped != uint64(attack) {
		t.Fatalf("dropped %d, attack packets %d", m.Dropped, attack)
	}

	// The session exposes the same snapshot, with the batch-path metrics
	// populated: every shard that processed traffic reports its burst
	// count, mean occupancy, and modeled per-packet cost.
	sm, err := session.EngineMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if sm.Processed != m.Processed {
		t.Fatalf("session metrics processed %d, engine %d", sm.Processed, m.Processed)
	}
	for _, shard := range sm.Shards {
		if shard.Processed == 0 {
			continue
		}
		if shard.Batches == 0 || shard.AvgBatch < 1 {
			t.Fatalf("shard %d: batches=%d avg=%.2f — batch metrics missing", shard.Shard, shard.Batches, shard.AvgBatch)
		}
		if shard.NsPerPacket <= 0 {
			t.Fatalf("shard %d: ns/packet %.2f", shard.Shard, shard.NsPerPacket)
		}
	}

	// Per-epoch audit: honest fleet, quiesced boundary — must be clean.
	verdict, err := session.AuditEngineEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Clean {
		t.Fatalf("honest engine flagged: %+v", verdict)
	}

	// A second epoch over fresh traffic audits independently.
	more, _ := engineTraffic(1000, 2)
	for _, d := range more {
		for !eng.Inject(d) {
		}
	}
	eng.WaitDrained()
	verdict, err = session.AuditEngineEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Clean {
		t.Fatalf("second epoch flagged: %+v", verdict)
	}

	session.StopEngine()
	if session.EngineRunning() {
		t.Fatal("engine still running after StopEngine")
	}
	if _, err := session.InjectBatch(descs[:1]); !errors.Is(err, ErrNoEngine) {
		t.Fatalf("InjectBatch after StopEngine: %v", err)
	}
	// Serial path is handed back.
	if v := session.Process(descs[1]); v != VerdictAllow {
		t.Fatalf("serial Process after StopEngine: %v", v)
	}
	if err := session.Reconfigure(); err != nil {
		t.Fatalf("Reconfigure after StopEngine: %v", err)
	}
}

func TestEngineDetectsDropAfterFilter(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	// The downstream path swallows every 10th forwarded packet: the
	// enclaves' outgoing logs then exceed what the victim saw.
	var mu sync.Mutex
	n := 0
	eng, err := session.StartEngine(EngineConfig{
		Deliver: func(d Descriptor) {
			mu.Lock()
			n++
			drop := n%10 == 0
			mu.Unlock()
			if !drop {
				session.ObserveDelivered(d.Tuple)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Inject through the session's batched path: each burst is routed once
	// by the deployment's balancer and scattered to the shards. The 3000-
	// descriptor stream fits the default rings even undrained, so every
	// burst must be accepted whole (InjectBatch's count is not a resumable
	// prefix; nothing may be dropped here or the verdict totals below
	// would drift).
	descs, _ := engineTraffic(3000, 3)
	for off := 0; off < len(descs); off += 256 {
		end := off + 256
		if end > len(descs) {
			end = len(descs)
		}
		n, err := session.InjectBatch(descs[off:end])
		if err != nil {
			t.Fatal(err)
		}
		if n != end-off {
			t.Fatalf("burst at %d: accepted %d of %d with roomy rings", off, n, end-off)
		}
	}
	eng.WaitDrained()
	verdict, err := session.AuditEngineEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Clean || verdict.DropAfterFilter == 0 {
		t.Fatalf("drop-after-filter not detected: %+v", verdict)
	}
	session.StopEngine()
}

func TestEngineReportsMisrouting(t *testing.T) {
	svc, err := attest.NewService()
	if err != nil {
		t.Fatal(err)
	}
	registry := rpki.NewRegistry()
	if err := registry.Add(rpki.ROA{
		Prefix: rules.MustParsePrefix("192.0.2.0/24"), ASN: victimASN, MaxLength: 32,
	}); err != nil {
		t.Fatal(err)
	}
	// A tiny per-enclave rule budget forces a multi-enclave fleet, so the
	// misrouting balancer has wrong shards to steer to.
	d, err := NewDeployment(DeploymentConfig{
		Name:               "AMS-IX",
		MaxRulesPerEnclave: 2,
		LBFaults:           lb.Faults{MisrouteProb: 0.3, Seed: 11},
	}, svc, registry)
	if err != nil {
		t.Fatal(err)
	}
	rs := make([]Rule, 0, 6)
	for _, src := range []string{"10.0.0.0/8", "172.16.0.0/12", "198.51.100.0/24",
		"203.0.113.0/24", "100.64.0.0/10", "192.88.99.0/24"} {
		r, err := ParseRule("drop udp from " + src + " to 192.0.2.0/24 dport 53")
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}
	set, err := NewRuleSet(rs, true)
	if err != nil {
		t.Fatal(err)
	}
	session, err := RequestFiltering(victimASN, d, set)
	if err != nil {
		t.Fatal(err)
	}
	if session.FleetSize() < 2 {
		t.Fatalf("fleet size %d, want ≥2", session.FleetSize())
	}
	eng, err := session.StartEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Traffic sourced inside the rule prefixes: a misrouted packet then
	// matches a peer shard's rule, which is exactly what the enclave-side
	// misroute counter witnesses.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		r := set.Rules[rng.Intn(set.Len())]
		de := Descriptor{
			Tuple: FiveTuple{
				SrcIP:   r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP:   packet.MustParseIP("192.0.2.10"),
				SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
			},
			Size: 512,
		}
		for !eng.Inject(de) {
		}
	}
	eng.WaitDrained()
	session.StopEngine()
	if session.MisrouteReports() == 0 {
		t.Fatal("misrouting balancer went unreported")
	}
}

// twoVictimDeployment authorizes two victims with disjoint prefixes.
func twoVictimDeployment(t *testing.T) *Deployment {
	t.Helper()
	svc, err := attest.NewService()
	if err != nil {
		t.Fatal(err)
	}
	registry := rpki.NewRegistry()
	if err := registry.Add(rpki.ROA{
		Prefix: rules.MustParsePrefix("192.0.2.0/24"), ASN: victimASN, MaxLength: 32,
	}); err != nil {
		t.Fatal(err)
	}
	if err := registry.Add(rpki.ROA{
		Prefix: rules.MustParsePrefix("198.51.100.0/24"), ASN: 64501, MaxLength: 32,
	}); err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(DeploymentConfig{Name: "AMS-IX"}, svc, registry)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func victimBRules(t *testing.T) *RuleSet {
	t.Helper()
	r1, err := ParseRule("drop udp from any to 198.51.100.0/24 dport 123")
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewRuleSet([]Rule{r1}, true)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// sharedEngineTraffic builds victim-targeted traffic: half hits the
// victim's drop rule (attack), half is legitimate TCP/443.
func sharedEngineTraffic(n int, seed int64, dst string, attackPort uint16) (descs []Descriptor, attack int) {
	rng := rand.New(rand.NewSource(seed))
	victim := packet.MustParseIP(dst)
	descs = make([]Descriptor, n)
	for i := range descs {
		var tp FiveTuple
		if i%2 == 0 {
			tp = FiveTuple{
				SrcIP: rng.Uint32(), DstIP: victim,
				SrcPort: attackPort, DstPort: attackPort, Proto: packet.ProtoUDP,
			}
			attack++
		} else {
			tp = FiveTuple{
				SrcIP: rng.Uint32(), DstIP: victim,
				SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443, Proto: packet.ProtoTCP,
			}
		}
		descs[i] = Descriptor{Tuple: tp, Size: 512}
	}
	return descs, attack
}

// TestSharedEngineTwoSessions is the tentpole acceptance test at the
// public API: two victims' sessions share one deployment engine, filter
// interleaved traffic with correct per-victim verdicts, audit on
// independent epoch cadences, hold EPC budget shares that sum to the
// machine EPC, and detach independently — one victim leaving never
// disturbs the other.
func TestSharedEngineTwoSessions(t *testing.T) {
	d := twoVictimDeployment(t)

	// Session A exists BEFORE the shared engine: StartEngine must re-pin
	// its fleet to the engine's shard count and re-attest.
	sessionA, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := d.SharedEngine(SharedEngineConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eng2, err := d.SharedEngine(SharedEngineConfig{Shards: 7}); err != nil || eng2 != eng {
		t.Fatalf("second SharedEngine call: %v, same=%v", err, eng2 == eng)
	}
	// Session B is created with the engine already up: its fleet is
	// pinned from the start.
	sessionB, err := RequestFiltering(64501, d, victimBRules(t))
	if err != nil {
		t.Fatal(err)
	}

	engA, err := sessionA.StartEngine(EngineConfig{
		Deliver: func(de Descriptor) { sessionA.ObserveDelivered(de.Tuple) },
	})
	if err != nil {
		t.Fatal(err)
	}
	engB, err := sessionB.StartEngine(EngineConfig{
		Deliver: func(de Descriptor) { sessionB.ObserveDelivered(de.Tuple) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if engA != eng || engB != eng {
		t.Fatal("sessions did not attach to the deployment's shared engine")
	}
	nsA, okA := sessionA.Namespace()
	nsB, okB := sessionB.Namespace()
	if !okA || !okB || nsA == nsB {
		t.Fatalf("namespaces %d/%d ok=%v/%v", nsA, nsB, okA, okB)
	}
	if !sessionA.EngineRunning() || !sessionB.EngineRunning() {
		t.Fatal("sessions not in engine mode after attach")
	}
	// Serial paths refuse while attached.
	if err := sessionA.Reconfigure(); !errors.Is(err, ErrEngineRunning) {
		t.Fatalf("Reconfigure while attached: %v", err)
	}
	if _, err := sessionB.AuditOutgoing(); !errors.Is(err, ErrEngineRunning) {
		t.Fatalf("AuditOutgoing while attached: %v", err)
	}

	// EPC budget: shares of both namespaces sum to the machine EPC.
	shares := eng.EPCShares()
	if got := shares[nsA] + shares[nsB]; got != eng.EPCBytes() {
		t.Fatalf("EPC shares %v sum %d, machine EPC %d", shares, got, eng.EPCBytes())
	}

	// Interleaved traffic through both sessions' batched paths. Tiny rule
	// sets land whole on one shard (the pinned fleet's other shard is
	// padding), so drain between burst pairs — this test pins verdict
	// totals, and InjectBatch's count is not a resumable prefix.
	descsA, attackA := sharedEngineTraffic(3000, 1, "192.0.2.10", 53)
	descsB, attackB := sharedEngineTraffic(3000, 2, "198.51.100.10", 123)
	for off := 0; off < 3000; off += 250 {
		end := min(off+250, 3000)
		if n, err := sessionA.InjectBatch(descsA[off:end]); err != nil || n != end-off {
			t.Fatalf("A burst at %d: n=%d err=%v", off, n, err)
		}
		if n, err := sessionB.InjectBatch(descsB[off:end]); err != nil || n != end-off {
			t.Fatalf("B burst at %d: n=%d err=%v", off, n, err)
		}
		eng.WaitDrained()
	}

	// Per-victim verdicts: each session drops exactly its own attack
	// traffic.
	vmA, err := sessionA.VictimMetrics()
	if err != nil {
		t.Fatal(err)
	}
	vmB, err := sessionB.VictimMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if vmA.Processed != 3000 || vmA.Dropped != uint64(attackA) {
		t.Fatalf("victim A processed/dropped %d/%d, want 3000/%d", vmA.Processed, vmA.Dropped, attackA)
	}
	if vmB.Processed != 3000 || vmB.Dropped != uint64(attackB) {
		t.Fatalf("victim B processed/dropped %d/%d, want 3000/%d", vmB.Processed, vmB.Dropped, attackB)
	}
	if vmA.EPCShareBytes+vmB.EPCShareBytes != eng.EPCBytes() {
		t.Fatalf("victim metrics EPC shares %d+%d != %d", vmA.EPCShareBytes, vmB.EPCShareBytes, eng.EPCBytes())
	}

	// Independent audit cadences: A audits twice while B audits once;
	// every audit is clean (honest deployment, per-namespace sinks must
	// have routed each victim exactly its own packets).
	if v, err := sessionA.AuditEngineEpoch(); err != nil || !v.Clean {
		t.Fatalf("A epoch 1: %+v err=%v", v, err)
	}
	moreA, _ := sharedEngineTraffic(1000, 3, "192.0.2.10", 53)
	if _, err := sessionA.InjectBatch(moreA); err != nil {
		t.Fatal(err)
	}
	eng.WaitDrained()
	if v, err := sessionA.AuditEngineEpoch(); err != nil || !v.Clean {
		t.Fatalf("A epoch 2: %+v err=%v", v, err)
	}
	if v, err := sessionB.AuditEngineEpoch(); err != nil || !v.Clean {
		t.Fatalf("B epoch 1: %+v err=%v", v, err)
	}
	if got := eng.Epoch(nsA); got != 2 {
		t.Fatalf("A sealed %d epochs, want 2", got)
	}
	if got := eng.Epoch(nsB); got != 1 {
		t.Fatalf("B sealed %d epochs, want 1", got)
	}

	// A detaches; B keeps filtering through the same engine.
	sessionA.StopEngine()
	if sessionA.EngineRunning() {
		t.Fatal("A still in engine mode after StopEngine")
	}
	if !sessionB.EngineRunning() {
		t.Fatal("B lost its engine when A detached")
	}
	if got := eng.EPCShares()[nsB]; got != eng.EPCBytes() {
		t.Fatalf("B's share %d after A detached, want the whole EPC %d", got, eng.EPCBytes())
	}
	// A's serial path is handed back (its filters left engine ownership).
	if v := sessionA.Process(descsA[1]); v != VerdictAllow {
		t.Fatalf("A serial Process after detach: %v", v)
	}
	if err := sessionA.Reconfigure(); err != nil {
		t.Fatalf("A Reconfigure after detach: %v", err)
	}
	// B continues: inject, audit, clean.
	moreB, _ := sharedEngineTraffic(1000, 4, "198.51.100.10", 123)
	if _, err := sessionB.InjectBatch(moreB); err != nil {
		t.Fatal(err)
	}
	eng.WaitDrained()
	if v, err := sessionB.AuditEngineEpoch(); err != nil || !v.Clean {
		t.Fatalf("B epoch 2 after A left: %+v err=%v", v, err)
	}

	// Abort detaches too (the satellite fix: stopping one session must
	// release shared-engine state, not tear the engine down).
	sessionB.Abort()
	if got := len(eng.Namespaces()); got != 0 {
		t.Fatalf("%d namespaces still attached after both sessions left", got)
	}
	if !eng.Running() {
		t.Fatal("shared engine stopped by a session detach")
	}
	d.StopSharedEngine()
	if eng.Running() {
		t.Fatal("engine still running after StopSharedEngine")
	}
}

// TestStaleAttachmentNeverShadowsPrivateEngine pins the recovery path:
// the operator stops the shared engine while a session is still
// attached; the session then starts a (private) engine and must be able
// to stop it and return to the serial path — the stale attachment to the
// dead engine cannot shadow the live private engine.
func TestStaleAttachmentNeverShadowsPrivateEngine(t *testing.T) {
	d := twoVictimDeployment(t)
	if _, err := d.SharedEngine(SharedEngineConfig{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.StartEngine(EngineConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := session.Namespace(); !ok {
		t.Fatal("session not attached to the shared engine")
	}
	d.StopSharedEngine()
	if session.EngineRunning() {
		t.Fatal("engine mode still reported on a stopped shared engine")
	}

	// A fresh StartEngine now builds a private engine (no shared engine
	// is up); the stale attachment must be cleaned out along the way.
	eng, err := session.StartEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := session.Namespace(); ok {
		t.Fatal("stale shared-engine namespace survived a private StartEngine")
	}
	if !session.EngineRunning() {
		t.Fatal("private engine not running")
	}
	descs, _ := engineTraffic(100, 9)
	if n, err := session.InjectBatch(descs); err != nil || n != len(descs) {
		t.Fatalf("inject on private engine: n=%d err=%v", n, err)
	}
	eng.WaitDrained()

	// StopEngine must stop the PRIVATE engine, not just detach the stale
	// attachment — the serial path comes back.
	session.StopEngine()
	if session.EngineRunning() {
		t.Fatal("private engine survived StopEngine")
	}
	if err := session.Reconfigure(); err != nil {
		t.Fatalf("serial path not handed back: %v", err)
	}
}
