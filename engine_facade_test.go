package vif

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/lb"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rpki"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// engineTraffic builds the usual mixed workload: DNS amplification (hits
// the drop rule) interleaved with legitimate HTTPS.
func engineTraffic(n int, seed int64) (descs []Descriptor, attack int) {
	rng := rand.New(rand.NewSource(seed))
	descs = make([]Descriptor, n)
	for i := range descs {
		var tp FiveTuple
		if i%2 == 0 {
			tp = FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.10"),
				SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
			}
			attack++
		} else {
			tp = FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.10"),
				SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443, Proto: packet.ProtoTCP,
			}
		}
		descs[i] = Descriptor{Tuple: tp, Size: 512}
	}
	return descs, attack
}

func TestEngineEndToEndHonest(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}

	eng, err := session.StartEngine(EngineConfig{
		Deliver: func(d Descriptor) { session.ObserveDelivered(d.Tuple) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !session.EngineRunning() {
		t.Fatal("engine not running after StartEngine")
	}

	// Serial paths must refuse while the engine owns the fleet.
	if _, err := session.AuditOutgoing(); !errors.Is(err, ErrEngineRunning) {
		t.Fatalf("AuditOutgoing during engine mode: %v", err)
	}
	if err := session.Reconfigure(); !errors.Is(err, ErrEngineRunning) {
		t.Fatalf("Reconfigure during engine mode: %v", err)
	}
	if v := session.Process(Descriptor{Tuple: FiveTuple{Proto: packet.ProtoUDP}, Size: 64}); v != VerdictDrop {
		t.Fatalf("Process during engine mode returned %v", v)
	}
	if _, err := session.StartEngine(EngineConfig{}); !errors.Is(err, ErrEngineRunning) {
		t.Fatalf("second StartEngine: %v", err)
	}

	descs, attack := engineTraffic(4000, 1)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(descs); i += 2 {
				for !eng.Inject(descs[i]) {
				}
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()

	m := eng.Metrics()
	if m.Processed != uint64(len(descs)) {
		t.Fatalf("processed %d of %d", m.Processed, len(descs))
	}
	if m.Dropped != uint64(attack) {
		t.Fatalf("dropped %d, attack packets %d", m.Dropped, attack)
	}

	// The session exposes the same snapshot, with the batch-path metrics
	// populated: every shard that processed traffic reports its burst
	// count, mean occupancy, and modeled per-packet cost.
	sm, err := session.EngineMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if sm.Processed != m.Processed {
		t.Fatalf("session metrics processed %d, engine %d", sm.Processed, m.Processed)
	}
	for _, shard := range sm.Shards {
		if shard.Processed == 0 {
			continue
		}
		if shard.Batches == 0 || shard.AvgBatch < 1 {
			t.Fatalf("shard %d: batches=%d avg=%.2f — batch metrics missing", shard.Shard, shard.Batches, shard.AvgBatch)
		}
		if shard.NsPerPacket <= 0 {
			t.Fatalf("shard %d: ns/packet %.2f", shard.Shard, shard.NsPerPacket)
		}
	}

	// Per-epoch audit: honest fleet, quiesced boundary — must be clean.
	verdict, err := session.AuditEngineEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Clean {
		t.Fatalf("honest engine flagged: %+v", verdict)
	}

	// A second epoch over fresh traffic audits independently.
	more, _ := engineTraffic(1000, 2)
	for _, d := range more {
		for !eng.Inject(d) {
		}
	}
	eng.WaitDrained()
	verdict, err = session.AuditEngineEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Clean {
		t.Fatalf("second epoch flagged: %+v", verdict)
	}

	session.StopEngine()
	if session.EngineRunning() {
		t.Fatal("engine still running after StopEngine")
	}
	if _, err := session.InjectBatch(descs[:1]); !errors.Is(err, ErrNoEngine) {
		t.Fatalf("InjectBatch after StopEngine: %v", err)
	}
	// Serial path is handed back.
	if v := session.Process(descs[1]); v != VerdictAllow {
		t.Fatalf("serial Process after StopEngine: %v", v)
	}
	if err := session.Reconfigure(); err != nil {
		t.Fatalf("Reconfigure after StopEngine: %v", err)
	}
}

func TestEngineDetectsDropAfterFilter(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	// The downstream path swallows every 10th forwarded packet: the
	// enclaves' outgoing logs then exceed what the victim saw.
	var mu sync.Mutex
	n := 0
	eng, err := session.StartEngine(EngineConfig{
		Deliver: func(d Descriptor) {
			mu.Lock()
			n++
			drop := n%10 == 0
			mu.Unlock()
			if !drop {
				session.ObserveDelivered(d.Tuple)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Inject through the session's batched path: each burst is routed once
	// by the deployment's balancer and scattered to the shards. The 3000-
	// descriptor stream fits the default rings even undrained, so every
	// burst must be accepted whole (InjectBatch's count is not a resumable
	// prefix; nothing may be dropped here or the verdict totals below
	// would drift).
	descs, _ := engineTraffic(3000, 3)
	for off := 0; off < len(descs); off += 256 {
		end := off + 256
		if end > len(descs) {
			end = len(descs)
		}
		n, err := session.InjectBatch(descs[off:end])
		if err != nil {
			t.Fatal(err)
		}
		if n != end-off {
			t.Fatalf("burst at %d: accepted %d of %d with roomy rings", off, n, end-off)
		}
	}
	eng.WaitDrained()
	verdict, err := session.AuditEngineEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Clean || verdict.DropAfterFilter == 0 {
		t.Fatalf("drop-after-filter not detected: %+v", verdict)
	}
	session.StopEngine()
}

func TestEngineReportsMisrouting(t *testing.T) {
	svc, err := attest.NewService()
	if err != nil {
		t.Fatal(err)
	}
	registry := rpki.NewRegistry()
	if err := registry.Add(rpki.ROA{
		Prefix: rules.MustParsePrefix("192.0.2.0/24"), ASN: victimASN, MaxLength: 32,
	}); err != nil {
		t.Fatal(err)
	}
	// A tiny per-enclave rule budget forces a multi-enclave fleet, so the
	// misrouting balancer has wrong shards to steer to.
	d, err := NewDeployment(DeploymentConfig{
		Name:               "AMS-IX",
		MaxRulesPerEnclave: 2,
		LBFaults:           lb.Faults{MisrouteProb: 0.3, Seed: 11},
	}, svc, registry)
	if err != nil {
		t.Fatal(err)
	}
	rs := make([]Rule, 0, 6)
	for _, src := range []string{"10.0.0.0/8", "172.16.0.0/12", "198.51.100.0/24",
		"203.0.113.0/24", "100.64.0.0/10", "192.88.99.0/24"} {
		r, err := ParseRule("drop udp from " + src + " to 192.0.2.0/24 dport 53")
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}
	set, err := NewRuleSet(rs, true)
	if err != nil {
		t.Fatal(err)
	}
	session, err := RequestFiltering(victimASN, d, set)
	if err != nil {
		t.Fatal(err)
	}
	if session.FleetSize() < 2 {
		t.Fatalf("fleet size %d, want ≥2", session.FleetSize())
	}
	eng, err := session.StartEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Traffic sourced inside the rule prefixes: a misrouted packet then
	// matches a peer shard's rule, which is exactly what the enclave-side
	// misroute counter witnesses.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		r := set.Rules[rng.Intn(set.Len())]
		de := Descriptor{
			Tuple: FiveTuple{
				SrcIP:   r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP:   packet.MustParseIP("192.0.2.10"),
				SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
			},
			Size: 512,
		}
		for !eng.Inject(de) {
		}
	}
	eng.WaitDrained()
	session.StopEngine()
	if session.MisrouteReports() == 0 {
		t.Fatal("misrouting balancer went unreported")
	}
}
