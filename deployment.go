package vif

import (
	"crypto/ecdsa"
	"errors"
	"fmt"

	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/cluster"
	"github.com/innetworkfiltering/vif/internal/dist"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/lb"
	"github.com/innetworkfiltering/vif/internal/rpki"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// ErrUnauthorized rejects filtering requests failing RPKI origin
// validation.
var ErrUnauthorized = rpki.ErrUnauthorized

// DeploymentConfig sizes a VIF filtering service (Figure 10's IXP rack).
type DeploymentConfig struct {
	// Name identifies the filtering network (e.g. "AMS-IX").
	Name string
	// Identity is the enclave code identity loaded on every filter;
	// defaults to FilterIdentity().
	Identity CodeIdentity
	// CostModel is the SGX platform model; defaults to the calibrated
	// DefaultCostModel.
	CostModel *enclave.CostModel
	// PerEnclaveGbps is each enclave's line rate (paper: 10 Gb/s).
	PerEnclaveGbps float64
	// MaxRulesPerEnclave is the per-enclave rule budget (paper: ~3,000
	// before the Figure 3a cliff).
	MaxRulesPerEnclave int
	// MaxEnclaves caps scale-out (50 enclaves ≈ the paper's 500 Gb/s
	// deployment example).
	MaxEnclaves int
	// LBFaults optionally makes the untrusted load balancer misbehave,
	// for adversarial experiments.
	LBFaults lb.Faults
}

func (c *DeploymentConfig) fillDefaults() {
	if c.Identity == (CodeIdentity{}) {
		c.Identity = FilterIdentity()
	}
	if c.CostModel == nil {
		m := enclave.DefaultCostModel()
		c.CostModel = &m
	}
	if c.PerEnclaveGbps == 0 {
		c.PerEnclaveGbps = 10
	}
	if c.MaxRulesPerEnclave == 0 {
		c.MaxRulesPerEnclave = 3000
	}
	if c.MaxEnclaves == 0 {
		c.MaxEnclaves = 50
	}
}

// Deployment is a VIF filtering service operated by a transit network.
// It owns the attestation platform, the RPKI validation cache, and the
// enclave fleet of each victim session.
type Deployment struct {
	cfg      DeploymentConfig
	service  *attest.Service
	platform *attest.Platform
	registry *rpki.Registry
}

// NewDeployment stands up a filtering service whose platform is certified
// by the given attestation service. The registry authorizes victims'
// filtering requests (it would be fed from the public RPKI).
func NewDeployment(cfg DeploymentConfig, service *attest.Service, registry *rpki.Registry) (*Deployment, error) {
	cfg.fillDefaults()
	if service == nil || registry == nil {
		return nil, errors.New("vif: deployment needs an attestation service and an RPKI registry")
	}
	platform, err := service.CertifyPlatform(cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("vif: certify platform: %w", err)
	}
	return &Deployment{
		cfg:      cfg,
		service:  service,
		platform: platform,
		registry: registry,
	}, nil
}

// Name returns the filtering network's name.
func (d *Deployment) Name() string { return d.cfg.Name }

// Identity returns the enclave code identity the deployment loads.
func (d *Deployment) Identity() CodeIdentity { return d.cfg.Identity }

// ServiceRoot returns the attestation service's verification key
// (published out of band; victims pin it).
func (d *Deployment) ServiceRoot() ecdsa.PublicKey { return d.service.RootPublicKey() }

// startCluster builds the enclave fleet for one authorized rule set.
func (d *Deployment) startCluster(set *rules.Set) (*cluster.Cluster, error) {
	epc := float64(d.cfg.CostModel.EPCBytes)
	return cluster.New(cluster.Config{
		Identity: d.cfg.Identity,
		Model:    *d.cfg.CostModel,
		Platform: d.platform,
		Dist: dist.Instance{
			G:      d.cfg.PerEnclaveGbps * 1e9,
			M:      epc,
			U:      epc / float64(d.cfg.MaxRulesPerEnclave),
			V:      2e6,
			Alpha:  1,
			Lambda: 0.2,
		},
		MaxEnclaves: d.cfg.MaxEnclaves,
		Faults:      d.cfg.LBFaults,
	}, set)
}

// authorize gates a victim's request on RPKI origin validation.
func (d *Deployment) authorize(victim bgp.ASN, set *rules.Set) error {
	return d.registry.AuthorizeFilterRequest(victim, set)
}

// snapshot relays an authenticated log snapshot request to the fleet.
func (d *Deployment) snapshot(c *cluster.Cluster, kind filter.LogKind, seq uint64) ([]*filter.SignedSnapshot, map[uint64][32]byte, error) {
	return c.Snapshots(kind, seq)
}
