package vif

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync"

	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/cluster"
	"github.com/innetworkfiltering/vif/internal/dist"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/engine"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/lb"
	"github.com/innetworkfiltering/vif/internal/rpki"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// ErrUnauthorized rejects filtering requests failing RPKI origin
// validation.
var ErrUnauthorized = rpki.ErrUnauthorized

// DeploymentConfig sizes a VIF filtering service (Figure 10's IXP rack).
type DeploymentConfig struct {
	// Name identifies the filtering network (e.g. "AMS-IX").
	Name string
	// Identity is the enclave code identity loaded on every filter;
	// defaults to FilterIdentity().
	Identity CodeIdentity
	// CostModel is the SGX platform model; defaults to the calibrated
	// DefaultCostModel.
	CostModel *enclave.CostModel
	// PerEnclaveGbps is each enclave's line rate (paper: 10 Gb/s).
	PerEnclaveGbps float64
	// MaxRulesPerEnclave is the per-enclave rule budget (paper: ~3,000
	// before the Figure 3a cliff).
	MaxRulesPerEnclave int
	// MaxEnclaves caps scale-out (50 enclaves ≈ the paper's 500 Gb/s
	// deployment example).
	MaxEnclaves int
	// LBFaults optionally makes the untrusted load balancer misbehave,
	// for adversarial experiments.
	LBFaults lb.Faults
}

func (c *DeploymentConfig) fillDefaults() {
	if c.Identity == (CodeIdentity{}) {
		c.Identity = FilterIdentity()
	}
	if c.CostModel == nil {
		m := enclave.DefaultCostModel()
		c.CostModel = &m
	}
	if c.PerEnclaveGbps == 0 {
		c.PerEnclaveGbps = 10
	}
	if c.MaxRulesPerEnclave == 0 {
		c.MaxRulesPerEnclave = 3000
	}
	if c.MaxEnclaves == 0 {
		c.MaxEnclaves = 50
	}
}

// Deployment is a VIF filtering service operated by a transit network.
// It owns the attestation platform, the RPKI validation cache, and the
// enclave fleet of each victim session.
type Deployment struct {
	cfg      DeploymentConfig
	service  *attest.Service
	platform *attest.Platform
	registry *rpki.Registry

	// shared is the deployment-wide multi-victim engine (nil until
	// SharedEngine is called). Victim sessions attach to it as rule
	// namespaces instead of each running a private engine.
	engMu  sync.Mutex
	shared *engine.Engine
}

// NewDeployment stands up a filtering service whose platform is certified
// by the given attestation service. The registry authorizes victims'
// filtering requests (it would be fed from the public RPKI).
func NewDeployment(cfg DeploymentConfig, service *attest.Service, registry *rpki.Registry) (*Deployment, error) {
	cfg.fillDefaults()
	if service == nil || registry == nil {
		return nil, errors.New("vif: deployment needs an attestation service and an RPKI registry")
	}
	platform, err := service.CertifyPlatform(cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("vif: certify platform: %w", err)
	}
	return &Deployment{
		cfg:      cfg,
		service:  service,
		platform: platform,
		registry: registry,
	}, nil
}

// Name returns the filtering network's name.
func (d *Deployment) Name() string { return d.cfg.Name }

// Identity returns the enclave code identity the deployment loads.
func (d *Deployment) Identity() CodeIdentity { return d.cfg.Identity }

// ServiceRoot returns the attestation service's verification key
// (published out of band; victims pin it).
func (d *Deployment) ServiceRoot() ecdsa.PublicKey { return d.service.RootPublicKey() }

// SharedEngineConfig sizes the deployment-wide multi-victim engine.
type SharedEngineConfig struct {
	// Shards is the number of enclave worker shards every attached victim
	// namespace spans. Default 4.
	Shards int
	// RingSize is each shard's ingress ring capacity. Default 4096.
	RingSize int
	// Batch is the worker burst size. Default 64.
	Batch int
	// Telemetry, when set, attaches the observability plane (stage
	// histograms, event journal, sampled traces, Prometheus collector) to
	// the shared engine. Must be sized for Shards.
	Telemetry *Telemetry
}

// SharedEngine starts (once) and returns the deployment's multi-victim
// engine: one sharded data plane serving every victim session that
// subsequently calls StartEngine, each as its own rule namespace with
// independent epoch rotation and an apportioned share of the machines'
// EPC. Subsequent calls return the same engine (the config is fixed by
// the first call). This is the paper's actual deployment shape: a transit
// AS / IXP filtering for many downstream victims at once.
func (d *Deployment) SharedEngine(cfg SharedEngineConfig) (*Engine, error) {
	d.engMu.Lock()
	defer d.engMu.Unlock()
	if d.shared != nil {
		return d.shared, nil
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	eng, err := engine.New(engine.Config{
		Shards:    cfg.Shards,
		RingSize:  cfg.RingSize,
		Batch:     cfg.Batch,
		EPCBytes:  d.cfg.CostModel.EPCBytes,
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return nil, fmt.Errorf("vif: shared engine: %w", err)
	}
	if err := eng.Start(); err != nil {
		return nil, fmt.Errorf("vif: shared engine: %w", err)
	}
	d.shared = eng
	return eng, nil
}

// StopSharedEngine drains and stops the deployment's shared engine.
// Attached sessions should detach first (Session.StopEngine); namespaces
// still attached simply stop receiving traffic.
func (d *Deployment) StopSharedEngine() {
	d.engMu.Lock()
	defer d.engMu.Unlock()
	if d.shared == nil {
		return
	}
	d.shared.Stop()
	d.shared = nil
}

// sharedEngine returns the shared engine, or nil when none is running.
func (d *Deployment) sharedEngine() *engine.Engine {
	d.engMu.Lock()
	defer d.engMu.Unlock()
	return d.shared
}

// pinnedShards returns the shared engine's shard count, or 0 when no
// shared engine is up (fleets are then free-sized by the optimizer).
func (d *Deployment) pinnedShards() int {
	if eng := d.sharedEngine(); eng != nil {
		return eng.Shards()
	}
	return 0
}

// startCluster builds the enclave fleet for one authorized rule set. When
// the shared engine is already up, the fleet is pinned to its shard count
// so the session can attach as a namespace without a later re-shard.
func (d *Deployment) startCluster(set *rules.Set) (*cluster.Cluster, error) {
	epc := float64(d.cfg.CostModel.EPCBytes)
	return cluster.New(cluster.Config{
		Identity: d.cfg.Identity,
		Model:    *d.cfg.CostModel,
		Platform: d.platform,
		Dist: dist.Instance{
			G:      d.cfg.PerEnclaveGbps * 1e9,
			M:      epc,
			U:      epc / float64(d.cfg.MaxRulesPerEnclave),
			V:      2e6,
			Alpha:  1,
			Lambda: 0.2,
		},
		MaxEnclaves:    d.cfg.MaxEnclaves,
		PinnedEnclaves: d.pinnedShards(),
		Faults:         d.cfg.LBFaults,
	}, set)
}

// authorize gates a victim's request on RPKI origin validation.
func (d *Deployment) authorize(victim bgp.ASN, set *rules.Set) error {
	return d.registry.AuthorizeFilterRequest(victim, set)
}

// snapshot relays an authenticated log snapshot request to the fleet.
func (d *Deployment) snapshot(c *cluster.Cluster, kind filter.LogKind, seq uint64) ([]*filter.SignedSnapshot, map[uint64][32]byte, error) {
	return c.Snapshots(kind, seq)
}
