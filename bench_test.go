// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, exercising the real implementations (wall-clock
// ns/op) and reporting the calibrated SGX cost model's virtual time as a
// custom metric where the paper's number is a modeled quantity. The
// experiment harness (cmd/vif-experiments) prints the corresponding
// paper-style tables; EXPERIMENTS.md records the comparison.
package vif_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/innetworkfiltering/vif/internal/attack"
	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/dist"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/engine"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/ixp"
	"github.com/innetworkfiltering/vif/internal/netsim"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/pipeline"
	"github.com/innetworkfiltering/vif/internal/rules"
	"github.com/innetworkfiltering/vif/internal/trie"
)

// --- shared fixtures -----------------------------------------------------

func benchRules(b *testing.B, k int, pAllow float64) *rules.Set {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	rs := make([]rules.Rule, k)
	dst := rules.MustParsePrefix("192.0.2.0/24")
	for i := range rs {
		rs[i] = rules.Rule{
			Src:    rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:    dst,
			Proto:  packet.ProtoUDP,
			PAllow: pAllow,
		}
	}
	set, err := rules.NewSet(rs, true)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

func benchFilter(b *testing.B, set *rules.Set, mode filter.CopyMode) *filter.Filter {
	b.Helper()
	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "bench", BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	f, err := filter.New(e, set, filter.Config{Mode: mode, Stride: 4, DisablePromotion: true})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func benchDescriptors(b *testing.B, set *rules.Set, size int) []packet.Descriptor {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	victim := packet.MustParseIP("192.0.2.77")
	out := make([]packet.Descriptor, 1024)
	for i := range out {
		r := set.Rules[rng.Intn(set.Len())]
		out[i] = packet.Descriptor{
			Tuple: packet.FiveTuple{
				SrcIP:   r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP:   victim,
				SrcPort: uint16(rng.Intn(60000) + 1),
				DstPort: 53,
				Proto:   packet.ProtoUDP,
			},
			Size: uint16(size),
			Ref:  packet.NoRef,
		}
	}
	return out
}

// runFilterBench processes b.N packets and reports both real ns/op and the
// SGX cost model's virtual ns/packet (the quantity behind the paper's
// throughput figures).
func runFilterBench(b *testing.B, set *rules.Set, mode filter.CopyMode, size int) {
	f := benchFilter(b, set, mode)
	descs := benchDescriptors(b, set, size)
	e := f.Enclave()
	e.ResetMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(descs[i&1023])
	}
	b.StopTimer()
	perPkt := e.VirtualNs()/float64(b.N) + e.Model().PipelineNs
	b.ReportMetric(perPkt, "modeled-ns/pkt")
	pps, _ := pipeline.ModeledThroughput(perPkt, size, pipeline.TenGigE)
	b.ReportMetric(pps/1e6, "modeled-Mpps")
}

// --- Figure 3a: throughput vs rule count ----------------------------------

func BenchmarkFig3a_Rules100(b *testing.B) {
	runFilterBench(b, benchRules(b, 100, 0), filter.CopyModeNearZero, 64)
}
func BenchmarkFig3a_Rules3000(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNearZero, 64)
}
func BenchmarkFig3a_Rules10000(b *testing.B) {
	runFilterBench(b, benchRules(b, 10000, 0), filter.CopyModeNearZero, 64)
}

// --- Figure 3b: memory footprint vs rule count -----------------------------

func BenchmarkFig3b_MemoryFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		set := benchRules(b, 3000, 0)
		b.StartTimer()
		f := benchFilter(b, set, filter.CopyModeNearZero)
		b.StopTimer()
		if i == 0 {
			b.ReportMetric(float64(f.Enclave().MemoryUsed())/1e6, "MB@3000rules")
		}
		b.StartTimer()
	}
}

// --- Figures 8 & 13: copy modes x packet sizes ------------------------------

func BenchmarkFig8_Native64(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNative, 64)
}
func BenchmarkFig8_FullCopy64(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeFull, 64)
}
func BenchmarkFig8_NearZeroCopy64(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNearZero, 64)
}
func BenchmarkFig13_Native1500(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNative, 1500)
}
func BenchmarkFig13_FullCopy1500(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeFull, 1500)
}
func BenchmarkFig13_NearZeroCopy1500(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNearZero, 1500)
}

// --- §V-B latency -----------------------------------------------------------

func BenchmarkLatency_128B(b *testing.B) {
	set := benchRules(b, 3000, 0)
	f := benchFilter(b, set, filter.CopyModeNearZero)
	descs := benchDescriptors(b, set, 128)
	m := pipeline.DefaultLatencyModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(descs[i&1023])
	}
	b.StopTimer()
	perPkt := f.Enclave().VirtualNs() / float64(b.N)
	lat := m.Latency(8e9, 128, perPkt)
	b.ReportMetric(float64(lat.Nanoseconds())/1000, "modeled-latency-us")
}

// --- Figure 14: hash-based filtering ----------------------------------------

func BenchmarkFig14_NoHashing(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNearZero, 64)
}
func BenchmarkFig14_AllHashed(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0.5), filter.CopyModeNearZero, 64)
}

// --- Table II: trie batch insertion -----------------------------------------

func benchmarkTrieBatchInsert(b *testing.B, batch int) {
	rng := rand.New(rand.NewSource(3))
	base := benchRules(b, 3000, 0)
	exact := make([]rules.Rule, batch)
	for i := range exact {
		exact[i] = rules.Rule{
			ID:      uint32(100000 + i),
			Src:     rules.Prefix{Addr: rng.Uint32(), Len: 32},
			Dst:     rules.Prefix{Addr: packet.MustParseIP("192.0.2.8"), Len: 32},
			SrcPort: rules.Port(uint16(rng.Intn(60000) + 1)),
			DstPort: rules.Port(53),
			Proto:   packet.ProtoUDP,
		}
	}
	// One base table; each iteration inserts a fresh batch of distinct
	// exact-match rules (rebuilding the 3,000-rule base per iteration
	// would dominate wall clock without changing the measured insert).
	tbl := trie.NewDefault()
	tbl.InsertSet(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range exact {
			exact[j].ID = uint32(100000 + i*batch + j)
			exact[j].Src.Addr += uint32(batch) // fresh anchors per round
		}
		tbl.InsertBatch(exact, 3000+i*batch)
	}
}

func BenchmarkTable2_BatchInsert1(b *testing.B)    { benchmarkTrieBatchInsert(b, 1) }
func BenchmarkTable2_BatchInsert10(b *testing.B)   { benchmarkTrieBatchInsert(b, 10) }
func BenchmarkTable2_BatchInsert100(b *testing.B)  { benchmarkTrieBatchInsert(b, 100) }
func BenchmarkTable2_BatchInsert1000(b *testing.B) { benchmarkTrieBatchInsert(b, 1000) }

// --- Table I / Figure 9: rule distribution ----------------------------------

func benchmarkGreedy(b *testing.B, k int, totalBps float64) {
	rng := rand.New(rand.NewSource(4))
	bw := netsim.LognormalBandwidths(rng, k, totalBps, netsim.DefaultSigma)
	bw, _ = netsim.ClampToCapacity(bw, 10e9)
	in := dist.Instance{
		B: bw, G: 10e9, M: 92e6, U: 92e6 / 3000, V: 2e6, Alpha: 1, Lambda: 0.2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.Greedy(in, dist.GreedyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_Greedy5000(b *testing.B)  { benchmarkGreedy(b, 5000, 100e9) }
func BenchmarkTable1_Greedy15000(b *testing.B) { benchmarkGreedy(b, 15000, 100e9) }

func BenchmarkTable1_ExactFirstIncumbent500(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	bw := netsim.LognormalBandwidths(rng, 500, 100e9, netsim.DefaultSigma)
	bw, _ = netsim.ClampToCapacity(bw, 10e9)
	in := dist.Instance{
		B: bw, G: 10e9, M: 92e6, U: 92e6 / 3000, V: 2e6, Alpha: 1, Lambda: 0.2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.SolveExact(in, dist.ExactOptions{
			StopAtFirst: true, Deadline: 30 * time.Second,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_Greedy150K(b *testing.B) { benchmarkGreedy(b, 150000, 500e9) }

// --- Batch data path: scalar vs burst processing ------------------------------

// benchTrainDescriptors is the allow-heavy workload for the batch-path
// comparison: every flow matches a deterministic allow rule (so both
// packet logs are updated — the most work per allowed packet) and emits
// trains of consecutive packets, the burst structure real traffic has
// (TCP segments arrive back-to-back; GRO/GSO exist because of it).
func benchTrainDescriptors(b *testing.B, set *rules.Set, train, size int) []packet.Descriptor {
	b.Helper()
	rng := rand.New(rand.NewSource(21))
	victim := packet.MustParseIP("192.0.2.77")
	out := make([]packet.Descriptor, 4096)
	for i := 0; i < len(out); i += train {
		r := set.Rules[rng.Intn(set.Len())]
		d := packet.Descriptor{
			Tuple: packet.FiveTuple{
				SrcIP:   r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP:   victim,
				SrcPort: uint16(rng.Intn(60000) + 1),
				DstPort: 53,
				Proto:   packet.ProtoUDP,
			},
			Size: uint16(size),
			Ref:  packet.NoRef,
		}
		for j := 0; j < train && i+j < len(out); j++ {
			out[i+j] = d
		}
	}
	return out
}

// BenchmarkFilterProcess is the retained scalar path: one Process call per
// packet, the pre-batching data plane.
func BenchmarkFilterProcess(b *testing.B) {
	set := benchRules(b, 3000, 1) // allow-heavy: every rule allows
	f := benchFilter(b, set, filter.CopyModeNearZero)
	descs := benchTrainDescriptors(b, set, 4, 64)
	e := f.Enclave()
	e.ResetMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(descs[i&4095])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "wall-Mpps")
	b.ReportMetric(e.VirtualNs()/float64(b.N), "modeled-ns/pkt")
}

// BenchmarkFilterBatch drives the same allow-heavy stream through
// ProcessBatch in engine-sized 64-packet bursts with a pooled verdict
// slice — the acceptance comparison for the batch-first refactor.
func BenchmarkFilterBatch(b *testing.B) {
	set := benchRules(b, 3000, 1)
	f := benchFilter(b, set, filter.CopyModeNearZero)
	descs := benchTrainDescriptors(b, set, 4, 64)
	e := f.Enclave()
	e.ResetMeter()
	var verdicts []filter.Verdict
	b.ResetTimer()
	n := 0
	for n < b.N {
		start := n & 4095
		end := start + 64
		if end > 4096 {
			end = 4096
		}
		if remaining := b.N - n; end-start > remaining {
			end = start + remaining
		}
		verdicts = f.ProcessBatch(descs[start:end], verdicts)
		n += end - start
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "wall-Mpps")
	b.ReportMetric(e.VirtualNs()/float64(b.N), "modeled-ns/pkt")
}

// --- Figure 4: engine shard scaling -------------------------------------------

// benchmarkEngineShards drives b.N descriptors through the live sharded
// engine (real worker goroutines, MPSC rings, batched bursts) and reports:
//
//   - ns/op: wall clock per injected packet on this machine (meaningful as
//     a parallel-scaling signal only when GOMAXPROCS > shards);
//   - aggregate-modeled-Mpps: the fleet's summed per-shard modeled
//     capacity, each shard's measured SGX virtual ns/pkt converted to a
//     line-rate-capped packet rate — the quantity of the paper's Figure 4,
//     where capacity grows linearly with the number of parallel enclaves
//     regardless of how many cores this host happens to have;
//   - wall-Mpps: the aggregate processed rate actually observed.
//
// Flows spread across shards by five-tuple hash, as an honest balancer
// with uniform shares would steer them.
func benchmarkEngineShards(b *testing.B, shards int) {
	set := benchRules(b, 3000, 0)
	fs := make([]*filter.Filter, shards)
	for i := range fs {
		fs[i] = benchFilter(b, set, filter.CopyModeNearZero)
	}
	eng, err := engine.New(engine.Config{Filters: fs})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	descs := benchDescriptors(b, set, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !eng.Inject(descs[i&1023]) {
			runtime.Gosched() // ring full: the shard is the bottleneck
		}
	}
	eng.WaitDrained()
	b.StopTimer()
	b.ReportMetric(eng.AggregateModeledPps(64)/1e6, "aggregate-modeled-Mpps")
	b.ReportMetric(eng.Metrics().PPS/1e6, "wall-Mpps")
}

func BenchmarkEngineShards1(b *testing.B) { benchmarkEngineShards(b, 1) }
func BenchmarkEngineShards2(b *testing.B) { benchmarkEngineShards(b, 2) }
func BenchmarkEngineShards4(b *testing.B) { benchmarkEngineShards(b, 4) }
func BenchmarkEngineShards8(b *testing.B) { benchmarkEngineShards(b, 8) }

// --- Figure 11: IXP coverage simulation --------------------------------------

func BenchmarkFig11_CoverageOneVictim(b *testing.B) {
	inet, err := bgp.Generate(bgp.GenConfig{
		Regions: 5, Tier1PerRegion: 2, Tier2PerRegion: 20, StubsPerRegion: 200, Seed: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	ixps, err := ixp.Build(inet, ixp.BuildConfig{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	bots, err := attack.MiraiBots(inet, 10000, 8)
	if err != nil {
		b.Fatal(err)
	}
	selected := ixp.SelectTopN(ixps, 5)
	stubs := inet.AllStubs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := []bgp.ASN{stubs[i%len(stubs)]}
		if _, err := ixp.Coverage(inet.Topo, victim, bots, selected); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Appendix G: remote attestation ------------------------------------------

func BenchmarkAppendixG_QuoteAndVerify(b *testing.B) {
	svc, err := attest.NewService()
	if err != nil {
		b.Fatal(err)
	}
	platform, err := svc.CertifyPlatform("bench")
	if err != nil {
		b.Fatal(err)
	}
	e, err := enclave.New(enclave.CodeIdentity{Name: "vif-filter", BinarySize: 1 << 20}, enclave.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	var nonce [32]byte
	want := e.Measurement()
	root := svc.RootPublicKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonce[0] = byte(i)
		q, err := platform.GenerateQuote(e, nonce, [attest.ReportDataSize]byte{})
		if err != nil {
			b.Fatal(err)
		}
		if err := attest.VerifyQuote(root, svc, q, nonce, want); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	model := attest.DefaultLatencyModel()
	b.ReportMetric(model.EndToEnd(1<<20).Total.Seconds(), "modeled-e2e-s")
}

// --- Table III: IXP membership synthesis --------------------------------------

func BenchmarkTable3_BuildIXPs(b *testing.B) {
	inet, err := bgp.Generate(bgp.GenConfig{
		Regions: 5, Tier1PerRegion: 2, Tier2PerRegion: 20, StubsPerRegion: 200, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ixp.Build(inet, ixp.BuildConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
