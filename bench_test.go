// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, exercising the real implementations (wall-clock
// ns/op) and reporting the calibrated SGX cost model's virtual time as a
// custom metric where the paper's number is a modeled quantity. The
// experiment harness (cmd/vif-experiments) prints the corresponding
// paper-style tables; EXPERIMENTS.md records the comparison.
package vif_test

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/innetworkfiltering/vif/internal/attack"
	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/classify"
	"github.com/innetworkfiltering/vif/internal/dist"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/engine"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/ixp"
	"github.com/innetworkfiltering/vif/internal/netsim"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/pipeline"
	"github.com/innetworkfiltering/vif/internal/rules"
	"github.com/innetworkfiltering/vif/internal/telemetry"
	"github.com/innetworkfiltering/vif/internal/trie"
)

// --- shared fixtures -----------------------------------------------------

func benchRules(b *testing.B, k int, pAllow float64) *rules.Set {
	return benchRulesSeed(b, k, pAllow, 1)
}

func benchRulesSeed(b *testing.B, k int, pAllow float64, seed int64) *rules.Set {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	rs := make([]rules.Rule, k)
	dst := rules.MustParsePrefix("192.0.2.0/24")
	for i := range rs {
		rs[i] = rules.Rule{
			Src:    rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:    dst,
			Proto:  packet.ProtoUDP,
			PAllow: pAllow,
		}
	}
	set, err := rules.NewSet(rs, true)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

func benchFilter(b *testing.B, set *rules.Set, mode filter.CopyMode) *filter.Filter {
	b.Helper()
	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "bench", BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	f, err := filter.New(e, set, filter.Config{Mode: mode, Stride: 4, DisablePromotion: true})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func benchDescriptors(b *testing.B, set *rules.Set, size int) []packet.Descriptor {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	victim := packet.MustParseIP("192.0.2.77")
	out := make([]packet.Descriptor, 1024)
	for i := range out {
		r := set.Rules[rng.Intn(set.Len())]
		out[i] = packet.Descriptor{
			Tuple: packet.FiveTuple{
				SrcIP:   r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP:   victim,
				SrcPort: uint16(rng.Intn(60000) + 1),
				DstPort: 53,
				Proto:   packet.ProtoUDP,
			},
			Size: uint16(size),
			Ref:  packet.NoRef,
		}
	}
	return out
}

// runFilterBench processes b.N packets and reports both real ns/op and the
// SGX cost model's virtual ns/packet (the quantity behind the paper's
// throughput figures).
func runFilterBench(b *testing.B, set *rules.Set, mode filter.CopyMode, size int) {
	f := benchFilter(b, set, mode)
	descs := benchDescriptors(b, set, size)
	e := f.Enclave()
	e.ResetMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(descs[i&1023])
	}
	b.StopTimer()
	perPkt := e.VirtualNs()/float64(b.N) + e.Model().PipelineNs
	b.ReportMetric(perPkt, "modeled-ns/pkt")
	pps, _ := pipeline.ModeledThroughput(perPkt, size, pipeline.TenGigE)
	b.ReportMetric(pps/1e6, "modeled-Mpps")
}

// --- Figure 3a: throughput vs rule count ----------------------------------

func BenchmarkFig3a_Rules100(b *testing.B) {
	runFilterBench(b, benchRules(b, 100, 0), filter.CopyModeNearZero, 64)
}
func BenchmarkFig3a_Rules3000(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNearZero, 64)
}
func BenchmarkFig3a_Rules10000(b *testing.B) {
	runFilterBench(b, benchRules(b, 10000, 0), filter.CopyModeNearZero, 64)
}

// --- Figure 3b: memory footprint vs rule count -----------------------------

func BenchmarkFig3b_MemoryFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		set := benchRules(b, 3000, 0)
		b.StartTimer()
		f := benchFilter(b, set, filter.CopyModeNearZero)
		b.StopTimer()
		if i == 0 {
			b.ReportMetric(float64(f.Enclave().MemoryUsed())/1e6, "MB@3000rules")
		}
		b.StartTimer()
	}
}

// --- Figures 8 & 13: copy modes x packet sizes ------------------------------

func BenchmarkFig8_Native64(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNative, 64)
}
func BenchmarkFig8_FullCopy64(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeFull, 64)
}
func BenchmarkFig8_NearZeroCopy64(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNearZero, 64)
}
func BenchmarkFig13_Native1500(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNative, 1500)
}
func BenchmarkFig13_FullCopy1500(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeFull, 1500)
}
func BenchmarkFig13_NearZeroCopy1500(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNearZero, 1500)
}

// --- §V-B latency -----------------------------------------------------------

func BenchmarkLatency_128B(b *testing.B) {
	set := benchRules(b, 3000, 0)
	f := benchFilter(b, set, filter.CopyModeNearZero)
	descs := benchDescriptors(b, set, 128)
	m := pipeline.DefaultLatencyModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(descs[i&1023])
	}
	b.StopTimer()
	perPkt := f.Enclave().VirtualNs() / float64(b.N)
	lat := m.Latency(8e9, 128, perPkt)
	b.ReportMetric(float64(lat.Nanoseconds())/1000, "modeled-latency-us")
}

// --- Figure 14: hash-based filtering ----------------------------------------

func BenchmarkFig14_NoHashing(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0), filter.CopyModeNearZero, 64)
}
func BenchmarkFig14_AllHashed(b *testing.B) {
	runFilterBench(b, benchRules(b, 3000, 0.5), filter.CopyModeNearZero, 64)
}

// --- Table II: trie batch insertion -----------------------------------------

func benchmarkTrieBatchInsert(b *testing.B, batch int) {
	rng := rand.New(rand.NewSource(3))
	base := benchRules(b, 3000, 0)
	exact := make([]rules.Rule, batch)
	for i := range exact {
		exact[i] = rules.Rule{
			ID:      uint32(100000 + i),
			Src:     rules.Prefix{Addr: rng.Uint32(), Len: 32},
			Dst:     rules.Prefix{Addr: packet.MustParseIP("192.0.2.8"), Len: 32},
			SrcPort: rules.Port(uint16(rng.Intn(60000) + 1)),
			DstPort: rules.Port(53),
			Proto:   packet.ProtoUDP,
		}
	}
	// One base table; each iteration inserts a fresh batch of distinct
	// exact-match rules (rebuilding the 3,000-rule base per iteration
	// would dominate wall clock without changing the measured insert).
	tbl := trie.NewDefault()
	tbl.InsertSet(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range exact {
			exact[j].ID = uint32(100000 + i*batch + j)
			exact[j].Src.Addr += uint32(batch) // fresh anchors per round
		}
		tbl.InsertBatch(exact, 3000+i*batch)
	}
}

func BenchmarkTable2_BatchInsert1(b *testing.B)    { benchmarkTrieBatchInsert(b, 1) }
func BenchmarkTable2_BatchInsert10(b *testing.B)   { benchmarkTrieBatchInsert(b, 10) }
func BenchmarkTable2_BatchInsert100(b *testing.B)  { benchmarkTrieBatchInsert(b, 100) }
func BenchmarkTable2_BatchInsert1000(b *testing.B) { benchmarkTrieBatchInsert(b, 1000) }

// --- Table I / Figure 9: rule distribution ----------------------------------

func benchmarkGreedy(b *testing.B, k int, totalBps float64) {
	rng := rand.New(rand.NewSource(4))
	bw := netsim.LognormalBandwidths(rng, k, totalBps, netsim.DefaultSigma)
	bw, _ = netsim.ClampToCapacity(bw, 10e9)
	in := dist.Instance{
		B: bw, G: 10e9, M: 92e6, U: 92e6 / 3000, V: 2e6, Alpha: 1, Lambda: 0.2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.Greedy(in, dist.GreedyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_Greedy5000(b *testing.B)  { benchmarkGreedy(b, 5000, 100e9) }
func BenchmarkTable1_Greedy15000(b *testing.B) { benchmarkGreedy(b, 15000, 100e9) }

func BenchmarkTable1_ExactFirstIncumbent500(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	bw := netsim.LognormalBandwidths(rng, 500, 100e9, netsim.DefaultSigma)
	bw, _ = netsim.ClampToCapacity(bw, 10e9)
	in := dist.Instance{
		B: bw, G: 10e9, M: 92e6, U: 92e6 / 3000, V: 2e6, Alpha: 1, Lambda: 0.2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.SolveExact(in, dist.ExactOptions{
			StopAtFirst: true, Deadline: 30 * time.Second,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_Greedy150K(b *testing.B) { benchmarkGreedy(b, 150000, 500e9) }

// --- Batch data path: scalar vs burst processing ------------------------------

// benchTrainDescriptors is the allow-heavy workload for the batch-path
// comparison: every flow matches a deterministic allow rule (so both
// packet logs are updated — the most work per allowed packet) and emits
// trains of consecutive packets, the burst structure real traffic has
// (TCP segments arrive back-to-back; GRO/GSO exist because of it).
func benchTrainDescriptors(b *testing.B, set *rules.Set, train, size int) []packet.Descriptor {
	b.Helper()
	rng := rand.New(rand.NewSource(21))
	victim := packet.MustParseIP("192.0.2.77")
	out := make([]packet.Descriptor, 4096)
	for i := 0; i < len(out); i += train {
		r := set.Rules[rng.Intn(set.Len())]
		d := packet.Descriptor{
			Tuple: packet.FiveTuple{
				SrcIP:   r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP:   victim,
				SrcPort: uint16(rng.Intn(60000) + 1),
				DstPort: 53,
				Proto:   packet.ProtoUDP,
			},
			Size: uint16(size),
			Ref:  packet.NoRef,
		}
		for j := 0; j < train && i+j < len(out); j++ {
			out[i+j] = d
		}
	}
	return out
}

// BenchmarkFilterProcess is the retained scalar path: one Process call per
// packet, the pre-batching data plane.
func BenchmarkFilterProcess(b *testing.B) {
	set := benchRules(b, 3000, 1) // allow-heavy: every rule allows
	f := benchFilter(b, set, filter.CopyModeNearZero)
	descs := benchTrainDescriptors(b, set, 4, 64)
	e := f.Enclave()
	e.ResetMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(descs[i&4095])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "wall-Mpps")
	b.ReportMetric(e.VirtualNs()/float64(b.N), "modeled-ns/pkt")
}

// BenchmarkFilterBatch drives the same allow-heavy stream through
// ProcessBatch in engine-sized 64-packet bursts with a pooled verdict
// slice — the acceptance comparison for the batch-first refactor.
func BenchmarkFilterBatch(b *testing.B) {
	set := benchRules(b, 3000, 1)
	f := benchFilter(b, set, filter.CopyModeNearZero)
	descs := benchTrainDescriptors(b, set, 4, 64)
	e := f.Enclave()
	e.ResetMeter()
	var verdicts []filter.Verdict
	b.ResetTimer()
	n := 0
	for n < b.N {
		start := n & 4095
		end := start + 64
		if end > 4096 {
			end = 4096
		}
		if remaining := b.N - n; end-start > remaining {
			end = start + remaining
		}
		verdicts = f.ProcessBatch(descs[start:end], verdicts)
		n += end - start
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "wall-Mpps")
	b.ReportMetric(e.VirtualNs()/float64(b.N), "modeled-ns/pkt")
}

// --- Figure 4: engine shard scaling (wall clock) ------------------------------

// benchmarkEngineWallScaling is the honest successor of the modeled-only
// shard benchmark: `shards` producer goroutines drive b.N descriptors
// through the live engine's batched injection path (256-packet bursts,
// one routing pass and one ring reservation per shard per burst) while
// `shards` workers drain and filter them — real goroutines, real rings,
// wall clock. It reports:
//
//   - wall-Mpps: b.N divided by elapsed wall time — the rate this machine
//     actually sustained end to end, injection included. This is the
//     number the ROADMAP's "fast as the hardware allows" north star means,
//     and the one the CI gate compares across shard counts;
//   - aggregate-modeled-Mpps: the fleet's summed per-shard modeled
//     capacity (measured SGX virtual ns/pkt converted to a line-rate-
//     capped rate) — the paper's Figure 4 quantity, host-independent,
//     kept so the two scaling stories can be told apart;
//   - host-cpus: GOMAXPROCS at run time. Wall-clock scaling with shards
//     is physically bounded by this; the bench gate only enforces
//     4-shard > 1-shard when the host has parallelism to give.
//
// Flows spread across shards by five-tuple hash, as an honest balancer
// with uniform shares would steer them.
func benchmarkEngineWallScaling(b *testing.B, shards int) {
	set := benchRules(b, 3000, 0)
	fs := make([]*filter.Filter, shards)
	for i := range fs {
		fs[i] = benchFilter(b, set, filter.CopyModeNearZero)
	}
	eng, err := engine.New(engine.Config{Filters: fs})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	descs := benchDescriptors(b, set, 64)
	const burst = 256
	producers := shards
	// remaining is decremented by ACCEPTED counts, not by optimistic
	// claims: InjectBatch drops what full rings refuse (its return is not
	// a resumable prefix), so producers keep offering fresh windows until
	// the fleet has actually swallowed b.N descriptors. The final bursts
	// may overshoot by < producers*burst — the reported rate therefore
	// divides what was really accepted, not b.N.
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			off := (p * burst) & 1023
			for remaining.Load() > 0 {
				win := descs[off : off+burst]
				off = (off + burst) & 1023
				k := eng.InjectBatch(win)
				if k == 0 {
					runtime.Gosched() // rings full: workers are the bottleneck
					continue
				}
				remaining.Add(-int64(k))
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()
	b.StopTimer()
	accepted := eng.Metrics().Accepted
	b.ReportMetric(float64(accepted)/b.Elapsed().Seconds()/1e6, "wall-Mpps")
	b.ReportMetric(eng.AggregateModeledPps(64)/1e6, "aggregate-modeled-Mpps")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "host-cpus")
}

func BenchmarkEngineWallScaling1(b *testing.B) { benchmarkEngineWallScaling(b, 1) }
func BenchmarkEngineWallScaling2(b *testing.B) { benchmarkEngineWallScaling(b, 2) }
func BenchmarkEngineWallScaling4(b *testing.B) { benchmarkEngineWallScaling(b, 4) }
func BenchmarkEngineWallScaling8(b *testing.B) { benchmarkEngineWallScaling(b, 8) }

// --- Telemetry overhead: observability must stay off the hot path -------------

// benchmarkEngineTelemetry holds the 2-shard wall-scaling workload
// constant and varies only whether the observability plane is attached.
// The On variant runs telemetry at its production defaults (1-in-64 burst
// stage sampling, 1-in-4096 batch packet traces, journal on), so the
// measured delta is exactly what an operator pays for flipping
// -metrics-addr on. The CI gate holds On at >= 0.97x Off: sampling,
// nil-guarded recorders, and the single per-burst Outstanding() load are
// the whole per-packet bill, and if the gate trips, telemetry has leaked
// real work onto the per-packet path.
func benchmarkEngineTelemetry(b *testing.B, tel *telemetry.Telemetry) {
	const shards = 2
	set := benchRules(b, 3000, 0)
	fs := make([]*filter.Filter, shards)
	for i := range fs {
		fs[i] = benchFilter(b, set, filter.CopyModeNearZero)
	}
	eng, err := engine.New(engine.Config{Filters: fs, Telemetry: tel})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	descs := benchDescriptors(b, set, 64)
	const burst = 256
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < shards; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			off := (p * burst) & 1023
			for remaining.Load() > 0 {
				win := descs[off : off+burst]
				off = (off + burst) & 1023
				k := eng.InjectBatch(win)
				if k == 0 {
					runtime.Gosched()
					continue
				}
				remaining.Add(-int64(k))
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()
	b.StopTimer()
	accepted := eng.Metrics().Accepted
	b.ReportMetric(float64(accepted)/b.Elapsed().Seconds()/1e6, "wall-Mpps")
	if tel != nil {
		started, completed := tel.Tracer().Counts()
		b.ReportMetric(float64(started), "traces-started")
		b.ReportMetric(float64(completed), "traces-completed")
	}
}

func BenchmarkEngineTelemetryOff(b *testing.B) { benchmarkEngineTelemetry(b, nil) }

func BenchmarkEngineTelemetryOn(b *testing.B) {
	benchmarkEngineTelemetry(b, telemetry.New(telemetry.Config{Shards: 2}))
}

// --- Module pipeline overhead: composability must stay off the hot path -------

// benchmarkEngineModulePipeline holds the 2-shard wall-scaling workload
// constant and varies only the worker inner loop: the legacy fixed loop
// (one Fused module calling ProcessBatch) versus the default decomposed
// classify→sketch→charge chain. The chain's extra bill per burst is the
// module dispatch itself — a few interface calls and the shared BurstCtx
// bookkeeping — so the CI gate holds chain wall pps at >= 0.97x legacy.
// If the gate trips, per-burst composability has leaked per-packet work.
func benchmarkEngineModulePipeline(b *testing.B, legacy bool) {
	const shards = 2
	set := benchRules(b, 3000, 0)
	fs := make([]*filter.Filter, shards)
	for i := range fs {
		fs[i] = benchFilter(b, set, filter.CopyModeNearZero)
	}
	eng, err := engine.New(engine.Config{Filters: fs, LegacyLoop: legacy})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	descs := benchDescriptors(b, set, 64)
	const burst = 256
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < shards; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			off := (p * burst) & 1023
			for remaining.Load() > 0 {
				win := descs[off : off+burst]
				off = (off + burst) & 1023
				k := eng.InjectBatch(win)
				if k == 0 {
					runtime.Gosched()
					continue
				}
				remaining.Add(-int64(k))
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()
	b.StopTimer()
	accepted := eng.Metrics().Accepted
	b.ReportMetric(float64(accepted)/b.Elapsed().Seconds()/1e6, "wall-Mpps")
}

func BenchmarkEngineModulePipelineLegacy(b *testing.B) { benchmarkEngineModulePipeline(b, true) }
func BenchmarkEngineModulePipelineChain(b *testing.B)  { benchmarkEngineModulePipeline(b, false) }

// --- Multi-victim namespaces: dispatch must stay off the hot path -------------

// benchmarkEngineMultiVictim holds the machine workload constant — two
// shards, two producers, the same per-burst injection pattern — and
// varies only how many victim namespaces the one engine serves. Each
// victim brings its own rule set (one filter per shard) and its own
// descriptor stream stamped with its namespace id, so the measured
// quantity is the cost of namespace dispatch itself: the copy-on-write
// view load per burst plus the 2-byte NS compares that split bursts into
// runs. The CI gate holds 4-namespace wall pps at ≥ 0.7x the
// single-namespace figure — if dispatch ever lands on the per-packet
// path, this collapses and the gate trips.
func benchmarkEngineMultiVictim(b *testing.B, victims int) {
	const (
		shards    = 2
		producers = 2
		burst     = 256
	)
	eng, err := engine.New(engine.Config{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	streams := make([][]packet.Descriptor, victims)
	for v := 0; v < victims; v++ {
		set := benchRulesSeed(b, 256, 0, int64(v+1))
		fs := make([]*filter.Filter, shards)
		for i := range fs {
			fs[i] = benchFilter(b, set, filter.CopyModeNearZero)
		}
		ns, err := eng.AttachNamespace(engine.NamespaceConfig{Filters: fs})
		if err != nil {
			b.Fatal(err)
		}
		descs := benchDescriptors(b, set, 64)
		for i := range descs {
			descs[i].NS = uint16(ns)
		}
		streams[v] = descs
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			off := (p * burst) & 1023
			for v := p % victims; remaining.Load() > 0; v = (v + 1) % victims {
				win := streams[v][off : off+burst]
				off = (off + burst) & 1023
				k := eng.InjectBatch(win)
				if k == 0 {
					runtime.Gosched()
					continue
				}
				remaining.Add(-int64(k))
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()
	b.StopTimer()
	accepted := eng.Metrics().Accepted
	b.ReportMetric(float64(accepted)/b.Elapsed().Seconds()/1e6, "wall-Mpps")
	b.ReportMetric(float64(victims), "victims")
}

func BenchmarkEngineMultiVictim1(b *testing.B)  { benchmarkEngineMultiVictim(b, 1) }
func BenchmarkEngineMultiVictim4(b *testing.B)  { benchmarkEngineMultiVictim(b, 4) }
func BenchmarkEngineMultiVictim16(b *testing.B) { benchmarkEngineMultiVictim(b, 16) }

// --- Overload isolation: one flooded victim must not starve the quiet ones ----

// benchmarkEngineIsolation measures what per-victim admission control
// buys: the quiet victims' wall throughput with an attacked neighbor on
// the same engine versus without one. The attacked victim carries a low
// explicit AdmitPps cap (the knob an operator turns mid-attack), so its
// flood is clipped at ingress — marker writes, no route, no ring, no
// filter work — and the quiet victims keep their shard and EPC shares.
//
// Both phases use ONE producer injecting the same quiet-victim pattern;
// the attacked phase interleaves one attacker burst per quiet burst (a
// 1:1 offered-load flood). Single-producer on purpose: on a small host a
// second producer goroutine would turn the ratio into a scheduler
// measurement. The gate (scripts/bench_engine.sh, quiet_victim_ge_09)
// holds attacked/solo quiet throughput at >= 0.9.
func benchmarkEngineIsolation(b *testing.B, attacked bool) {
	const (
		shards = 2
		quiet  = 3
		burst  = 256
	)
	eng, err := engine.New(engine.Config{
		Shards:    shards,
		Admission: &engine.AdmissionConfig{Burst: 512},
	})
	if err != nil {
		b.Fatal(err)
	}
	// The attacked victim is attached in BOTH phases (same EPC and share
	// layout); only its flood is phase-dependent.
	atkSet := benchRulesSeed(b, 256, 0, 99)
	atkFilters := make([]*filter.Filter, shards)
	for i := range atkFilters {
		atkFilters[i] = benchFilter(b, atkSet, filter.CopyModeNearZero)
	}
	nsAtk, err := eng.AttachNamespace(engine.NamespaceConfig{
		Filters: atkFilters, AdmitPps: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	atkDescs := benchDescriptors(b, atkSet, 64)
	for i := range atkDescs {
		atkDescs[i].NS = uint16(nsAtk)
	}
	streams := make([][]packet.Descriptor, quiet)
	for v := 0; v < quiet; v++ {
		set := benchRulesSeed(b, 256, 0, int64(v+1))
		fs := make([]*filter.Filter, shards)
		for i := range fs {
			fs[i] = benchFilter(b, set, filter.CopyModeNearZero)
		}
		ns, err := eng.AttachNamespace(engine.NamespaceConfig{Filters: fs})
		if err != nil {
			b.Fatal(err)
		}
		descs := benchDescriptors(b, set, 64)
		for i := range descs {
			descs[i].NS = uint16(ns)
		}
		streams[v] = descs
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()

	remaining := b.N
	quietAccepted := 0
	off, atkOff := 0, 0
	b.ResetTimer()
	for v := 0; remaining > 0; v = (v + 1) % quiet {
		if attacked {
			eng.InjectBatch(atkDescs[atkOff : atkOff+burst])
			atkOff = (atkOff + burst) & 1023
		}
		win := streams[v][off : off+burst]
		off = (off + burst) & 1023
		k := eng.InjectBatch(win)
		if k == 0 {
			runtime.Gosched()
			continue
		}
		quietAccepted += k
		remaining -= k
	}
	eng.WaitDrained()
	b.StopTimer()
	b.ReportMetric(float64(quietAccepted)/b.Elapsed().Seconds()/1e6, "quiet-wall-Mpps")
	if attacked {
		nm := eng.Metrics().Namespaces
		var throttled uint64
		for _, n := range nm {
			if n.NS == nsAtk {
				throttled = n.Throttled
			}
		}
		b.ReportMetric(float64(throttled), "attacker-throttled")
	}
}

func BenchmarkEngineIsolationSolo(b *testing.B)     { benchmarkEngineIsolation(b, false) }
func BenchmarkEngineIsolationAttacked(b *testing.B) { benchmarkEngineIsolation(b, true) }

// --- Filter.Reconfigure latency vs rule-set size -------------------------------

// benchmarkReconfigure times a full rule-set reinstall — trie rebuild,
// exact-table reset, view swap — at growing rule counts. Reconfigure
// currently rebuilds the whole snapshot, so ns/op here is the baseline
// the ROADMAP's snapshot-level trie-diffing item has to beat; recorded in
// BENCH_engine.json so the trajectory is pinned before the incremental
// builder lands.
func benchmarkReconfigure(b *testing.B, k int) {
	set := benchRules(b, k, 0)
	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "bench", BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	f, err := filter.New(e, set, filter.Config{Mode: filter.CopyModeNearZero})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Reconfigure(set, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(k), "rules")
}

func BenchmarkReconfigure1k(b *testing.B)  { benchmarkReconfigure(b, 1000) }
func BenchmarkReconfigure10k(b *testing.B) { benchmarkReconfigure(b, 10000) }
func BenchmarkReconfigure25k(b *testing.B) { benchmarkReconfigure(b, 25000) }

// benchmarkReconfigureDelta is the incremental counterpart: the same
// filter sizes, but each iteration pushes a ≤1%-of-rules changeset
// (remove the previous iteration's batch, add a fresh one) through
// ReconfigureDelta — trie.Snapshot.Diff reusing untouched subtrees —
// instead of rebuilding the table. The full-rebuild numbers above are the
// baseline this must beat: scripts/bench_engine.sh gates the 10k and 25k
// ratios at ≥5x. The iteration budget matters: Diff's slack compaction
// first fires after ~20-30 consecutive 1% deltas and the filter's
// priority-domain densify rebuild after ~100, so the script runs this
// sweep at 120 iterations (DELTA_BENCHTIME) precisely so the gated mean
// spans at least one cycle of both amortized costs — steady-state churn,
// not the best case.
func benchmarkReconfigureDelta(b *testing.B, k int) {
	set := benchRules(b, k, 0)
	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "bench", BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	f, err := filter.New(e, set, filter.Config{Mode: filter.CopyModeNearZero})
	if err != nil {
		b.Fatal(err)
	}
	n := k / 100 // 1% churn per reinstall
	rng := rand.New(rand.NewSource(42))
	dst := rules.MustParsePrefix("192.0.2.0/24")
	var prev []rules.Rule
	nextID := uint32(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		adds := make([]rules.Rule, n)
		for j := range adds {
			adds[j] = rules.Rule{
				ID:    nextID,
				Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
				Dst:   dst,
				Proto: packet.ProtoUDP,
			}
			nextID++
		}
		b.StartTimer()
		if err := f.ReconfigureDelta(filter.Delta{Adds: adds, Removes: prev}); err != nil {
			b.Fatal(err)
		}
		prev = adds
	}
	b.StopTimer()
	b.ReportMetric(float64(k), "rules")
	b.ReportMetric(float64(n), "delta-rules")
}

func BenchmarkReconfigureDelta1k(b *testing.B)  { benchmarkReconfigureDelta(b, 1000) }
func BenchmarkReconfigureDelta10k(b *testing.B) { benchmarkReconfigureDelta(b, 10000) }
func BenchmarkReconfigureDelta25k(b *testing.B) { benchmarkReconfigureDelta(b, 25000) }

// --- Injection path: scalar vs batched producers ------------------------------

// benchmarkEngineInject measures the producer-side cost the tentpole
// attacks: two producer goroutines push b.N descriptors through a
// four-shard engine as 256-packet single-flow trains (the burst structure
// GRO/GSO exists for). The workers run, but the batch filter path dedups
// each train to one decision and one sketch update, so their per-packet
// share stays small and the clock predominantly sees injection — route,
// reserve, publish. Rings stay cache-warm because the same slots recycle
// for the whole run. The batch/scalar wall-Mpps ratio is the gated
// quantity: batched injection must stay ≥2x scalar (one routing pass, one
// ring CAS, and one accepted-counter update per burst-run instead of one
// of each per packet).
func benchmarkEngineInject(b *testing.B, batched bool) {
	set := benchRules(b, 8, 0)
	const (
		shards    = 4
		producers = 2
		burst     = 256
	)
	fs := make([]*filter.Filter, shards)
	for i := range fs {
		fs[i] = benchFilter(b, set, filter.CopyModeNearZero)
	}
	eng, err := engine.New(engine.Config{Filters: fs})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	descs := benchTrainDescriptors(b, set, burst, 64)
	// Scalar producers claim a burst upfront and retry each packet until
	// accepted (sound per packet). Batched producers cannot resume a
	// partially accepted window (InjectBatch drops refusals), so they
	// decrement the quota by what was actually accepted and keep offering
	// fresh windows; the reported rate divides real acceptance.
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			off := (p * 2048) & 4095
			if batched {
				for remaining.Load() > 0 {
					win := descs[off : off+burst]
					off = (off + burst) & 4095
					k := eng.InjectBatch(win)
					if k == 0 {
						runtime.Gosched()
						continue
					}
					remaining.Add(-int64(k))
				}
				return
			}
			for {
				claimed := remaining.Add(-burst)
				n := burst
				if claimed < 0 {
					n = int(claimed + burst)
					if n <= 0 {
						return
					}
				}
				win := descs[off : off+n]
				off = (off + burst) & 4095
				for i := 0; i < n; i++ {
					for !eng.Inject(win[i]) {
						runtime.Gosched()
					}
				}
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()
	b.StopTimer()
	accepted := eng.Metrics().Accepted
	b.ReportMetric(float64(accepted)/b.Elapsed().Seconds()/1e6, "wall-Mpps")
}

func BenchmarkEngineInjectScalar(b *testing.B) { benchmarkEngineInject(b, false) }
func BenchmarkEngineInjectBatch(b *testing.B)  { benchmarkEngineInject(b, true) }

// --- Compiled classifier: rule-count-invariant matching -----------------------

// benchClassifyRules builds a k-rule reflection-defense workload shaped to
// separate the compiled classifier from the trie candidate scan. Every
// rule gets a globally unique dst /28 carpet block inside 10.0.0.0/8, so
// the classifier's driving attribute resolves to a single-rule class and
// matching cost is independent of k. Src prefixes draw from a fixed
// 256-entry /16 vocabulary, so each trie src node accumulates ~k/256
// candidate entries — the per-node linear scan the classifier eliminates.
// Source ports cycle the classic reflection services; dst port stays
// wildcard to exercise the classifier's any-rule factoring.
func benchClassifyRules(b *testing.B, k int) *rules.Set {
	b.Helper()
	sports := []uint16{53, 123, 389, 1900, 11211}
	rs := make([]rules.Rule, k)
	for i := range rs {
		rs[i] = rules.Rule{
			Src:     rules.Prefix{Addr: 0x64000000 | uint32(i%256)<<16, Len: 16},
			Dst:     rules.Prefix{Addr: 0x0A000000 | uint32(i)<<4, Len: 28},
			SrcPort: rules.Port(sports[i%len(sports)]),
			Proto:   packet.ProtoUDP,
		}
	}
	set, err := rules.NewSet(rs, true)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// benchClassifyDescriptors draws rule-hitting tuples (random rule, random
// host inside its src and dst blocks, its reflection sport): the matching
// traffic that forces the full candidate scan on the trie path.
func benchClassifyDescriptors(b *testing.B, set *rules.Set, size int) []packet.Descriptor {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	out := make([]packet.Descriptor, 1024)
	for i := range out {
		r := set.Rules[rng.Intn(set.Len())]
		out[i] = packet.Descriptor{
			Tuple: packet.FiveTuple{
				SrcIP:   r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP:   r.Dst.Addr | (rng.Uint32() &^ r.Dst.Mask()),
				SrcPort: r.SrcPort.Lo,
				DstPort: uint16(rng.Intn(60000) + 1),
				Proto:   packet.ProtoUDP,
			},
			Size: uint16(size),
			Ref:  packet.NoRef,
		}
	}
	return out
}

// benchmarkClassifyBatch drives the workload through the full filter batch
// path (probe + bitset intersect per packet). ns/op is wall ns/pkt; the
// bench script gates the 100k figure at <= 2x the 1k figure — the
// rule-count-invariance claim, enforced.
func benchmarkClassifyBatch(b *testing.B, k int) {
	set := benchClassifyRules(b, k)
	f := benchFilter(b, set, filter.CopyModeNearZero)
	descs := benchClassifyDescriptors(b, set, 64)
	var verdicts []filter.Verdict
	b.ResetTimer()
	n := 0
	for n < b.N {
		start := n & 1023
		end := start + 64
		if end > 1024 {
			end = 1024
		}
		if remaining := b.N - n; end-start > remaining {
			end = start + remaining
		}
		verdicts = f.ProcessBatch(descs[start:end], verdicts)
		n += end - start
	}
	b.StopTimer()
	b.ReportMetric(float64(k), "rules")
}

func BenchmarkClassifyBatch1k(b *testing.B)   { benchmarkClassifyBatch(b, 1000) }
func BenchmarkClassifyBatch10k(b *testing.B)  { benchmarkClassifyBatch(b, 10000) }
func BenchmarkClassifyBatch100k(b *testing.B) { benchmarkClassifyBatch(b, 100000) }

// --- Classifier probe: binary search vs chunked direct-index + batch ----------

// benchClassifyProgram compiles the reflection workload's bare classifier
// (no filter around it) so the probe benchmarks isolate interval
// resolution + intersection from dedup, sketches, and cost charging.
func benchClassifyProgram(b *testing.B, k int) (*classify.Program, []packet.Descriptor) {
	b.Helper()
	set := benchClassifyRules(b, k)
	prog := classify.Compile(set.Rules, nil, int32(set.Len()-1))
	return prog, benchClassifyDescriptors(b, set, 64)
}

// BenchmarkClassifyProbeOld is the pre-index probe: one packet at a time,
// each attribute's interval found by binary search over the boundary
// table (ClassifySearch, the retained oracle). ns/op is ns/pkt.
func BenchmarkClassifyProbeOld(b *testing.B) {
	prog, descs := benchClassifyProgram(b, 100000)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := prog.ClassifySearch(descs[i&1023].Tuple); ok {
			hits++
		}
	}
	b.StopTimer()
	if hits != b.N {
		b.Fatalf("probe misses: %d/%d", b.N-hits, b.N)
	}
}

// BenchmarkClassifyProbeNew is this PR's probe: 64-packet bursts through
// ClassifyBatch — direct-index interval translation resolved
// breadth-first per attribute, then the per-packet intersections. ns/op
// is ns/pkt; the bench script gates new <= old/2.
func BenchmarkClassifyProbeNew(b *testing.B) {
	prog, descs := benchClassifyProgram(b, 100000)
	burst := make([]packet.FiveTuple, 64)
	var sc classify.BatchScratch
	b.ResetTimer()
	hits := 0
	n := 0
	for n < b.N {
		m := 64
		if remaining := b.N - n; m > remaining {
			m = remaining
		}
		for i := 0; i < m; i++ {
			burst[i] = descs[(n+i)&1023].Tuple
		}
		for _, r := range prog.ClassifyBatch(burst[:m], &sc) {
			if r.OK {
				hits++
			}
		}
		n += m
	}
	b.StopTimer()
	if hits != b.N {
		b.Fatalf("probe misses: %d/%d", b.N-hits, b.N)
	}
}

// benchmarkTrieScanPath is the side-by-side baseline: the same rule sets
// and the same matching tuples through the retained trie's lookup, whose
// per-node candidate scan grows with k/256 on this shape. Recorded next to
// the classify numbers in BENCH_filter.json so the superlinear degradation
// the classifier removes stays visible, not just asserted.
func benchmarkTrieScanPath(b *testing.B, k int) {
	set := benchClassifyRules(b, k)
	tbl := trie.NewDefault()
	tbl.InsertSet(set)
	snap := tbl.Snapshot()
	descs := benchClassifyDescriptors(b, set, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Lookup(descs[i&1023].Tuple)
	}
	b.StopTimer()
	b.ReportMetric(float64(k), "rules")
}

func BenchmarkTrieScanPath1k(b *testing.B)   { benchmarkTrieScanPath(b, 1000) }
func BenchmarkTrieScanPath10k(b *testing.B)  { benchmarkTrieScanPath(b, 10000) }
func BenchmarkTrieScanPath100k(b *testing.B) { benchmarkTrieScanPath(b, 100000) }

// --- Figure 11: IXP coverage simulation --------------------------------------

func BenchmarkFig11_CoverageOneVictim(b *testing.B) {
	inet, err := bgp.Generate(bgp.GenConfig{
		Regions: 5, Tier1PerRegion: 2, Tier2PerRegion: 20, StubsPerRegion: 200, Seed: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	ixps, err := ixp.Build(inet, ixp.BuildConfig{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	bots, err := attack.MiraiBots(inet, 10000, 8)
	if err != nil {
		b.Fatal(err)
	}
	selected := ixp.SelectTopN(ixps, 5)
	stubs := inet.AllStubs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := []bgp.ASN{stubs[i%len(stubs)]}
		if _, err := ixp.Coverage(inet.Topo, victim, bots, selected); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Appendix G: remote attestation ------------------------------------------

func BenchmarkAppendixG_QuoteAndVerify(b *testing.B) {
	svc, err := attest.NewService()
	if err != nil {
		b.Fatal(err)
	}
	platform, err := svc.CertifyPlatform("bench")
	if err != nil {
		b.Fatal(err)
	}
	e, err := enclave.New(enclave.CodeIdentity{Name: "vif-filter", BinarySize: 1 << 20}, enclave.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	var nonce [32]byte
	want := e.Measurement()
	root := svc.RootPublicKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonce[0] = byte(i)
		q, err := platform.GenerateQuote(e, nonce, [attest.ReportDataSize]byte{})
		if err != nil {
			b.Fatal(err)
		}
		if err := attest.VerifyQuote(root, svc, q, nonce, want); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	model := attest.DefaultLatencyModel()
	b.ReportMetric(model.EndToEnd(1<<20).Total.Seconds(), "modeled-e2e-s")
}

// --- Table III: IXP membership synthesis --------------------------------------

func BenchmarkTable3_BuildIXPs(b *testing.B) {
	inet, err := bgp.Generate(bgp.GenConfig{
		Regions: 5, Tier1PerRegion: 2, Tier2PerRegion: 20, StubsPerRegion: 200, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ixp.Build(inet, ixp.BuildConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
