// Package vif is a Go implementation of VIF — Verifiable In-network
// Filtering — from "Practical Verifiable In-network Filtering for DDoS
// Defense" (ICDCS 2019).
//
// VIF lets a DDoS victim install traffic filters at an upstream transit
// network (ideally a large IXP) *without trusting that network*:
//
//   - filters execute inside attested SGX enclaves, so the victim can
//     verify exactly which filter code runs (package internal/attest);
//   - the filter decision is a stateless function of the packet bits, so
//     the untrusted operator cannot steer verdicts through timing, order,
//     or injection (package internal/filter);
//   - count-min-sketch packet logs computed inside the enclaves let the
//     victim and the operator's neighbor ASes detect traffic dropped or
//     injected around the filters (package internal/bypass);
//   - capacity scales by parallelizing enclaves behind an untrusted load
//     balancer, with rule placement computed by the paper's greedy
//     algorithm (packages internal/dist, internal/lb, internal/cluster).
//
// This package is the public facade: Deployment is the filtering service
// a transit network operates, Session is one victim's attested filtering
// contract with it. The example programs under examples/ walk through the
// full workflow, and cmd/vif-experiments regenerates every table and
// figure of the paper's evaluation.
package vif

import (
	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// Re-exported core types: the vocabulary of the public API.
type (
	// Rule is one filter rule (see ParseRule for the textual form).
	Rule = rules.Rule
	// RuleSet is an ordered, first-match-wins rule list.
	RuleSet = rules.Set
	// FiveTuple identifies a transport flow.
	FiveTuple = packet.FiveTuple
	// Descriptor is a parsed packet summary on the data plane.
	Descriptor = packet.Descriptor
	// Verdict is a per-packet filtering decision.
	Verdict = filter.Verdict
	// ASN is an autonomous system number.
	ASN = bgp.ASN
	// CodeIdentity names the enclave binary victims pin via attestation.
	CodeIdentity = enclave.CodeIdentity
)

// Verdicts.
const (
	VerdictAllow = filter.VerdictAllow
	VerdictDrop  = filter.VerdictDrop
)

// ParseRule parses the textual rule form, e.g.
//
//	drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53
//	drop 50% tcp from any to 192.0.2.0/24 dport 80
func ParseRule(s string) (Rule, error) { return rules.Parse(s) }

// NewRuleSet builds a validated rule set. defaultAllow is the fate of
// traffic matching no rule (VIF defaults to allowing it: a filtering
// request only ever removes traffic the victim named).
func NewRuleSet(rs []Rule, defaultAllow bool) (*RuleSet, error) {
	return rules.NewSet(rs, defaultAllow)
}

// FilterIdentity is the reference code identity of this repository's
// filter implementation. Victims pin its Measurement; any change to the
// filter's security-relevant behavior must bump Version.
func FilterIdentity() CodeIdentity {
	return enclave.CodeIdentity{
		Name:       "vif-filter",
		Version:    "1.0.0",
		Config:     "sketch=2x65536;trie-stride=8;hash=sha256",
		BinarySize: 1 << 20,
	}
}
