package vif_test

import (
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
	"github.com/innetworkfiltering/vif/internal/sketch"
	"github.com/innetworkfiltering/vif/internal/trie"
)

// Ablation benchmarks for the design choices DESIGN.md §5 calls out.

// --- trie stride: lookup speed and memory vs fan-out -------------------------

func benchmarkStride(b *testing.B, stride int) {
	rng := rand.New(rand.NewSource(1))
	tbl, err := trie.New(stride)
	if err != nil {
		b.Fatal(err)
	}
	dst := rules.MustParsePrefix("192.0.2.0/24")
	for i := 0; i < 3000; i++ {
		tbl.Insert(rules.Rule{
			ID:    uint32(i + 1),
			Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:   dst,
			Proto: packet.ProtoUDP,
		}, i)
	}
	pkts := make([]packet.FiveTuple, 1024)
	for i := range pkts {
		pkts[i] = packet.FiveTuple{
			SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.1"), Proto: packet.ProtoUDP,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(pkts[i&1023])
	}
	b.StopTimer()
	b.ReportMetric(float64(tbl.MemoryBytes())/1e6, "table-MB")
}

func BenchmarkAblationTrieStride4(b *testing.B)  { benchmarkStride(b, 4) }
func BenchmarkAblationTrieStride8(b *testing.B)  { benchmarkStride(b, 8) }
func BenchmarkAblationTrieStride16(b *testing.B) { benchmarkStride(b, 16) }

// --- sketch geometry: memory vs bypass-detection noise ----------------------

func benchmarkSketchGeometry(b *testing.B, rows, bins int) {
	s, err := sketch.New(rows, bins)
	if err != nil {
		b.Fatal(err)
	}
	var key [13]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		key[1] = byte(i >> 8)
		s.Add(key[:], 1)
	}
	b.StopTimer()
	b.ReportMetric(float64(s.MemoryBytes())/1024, "sketch-KiB")
}

func BenchmarkAblationSketch2x64K(b *testing.B) { benchmarkSketchGeometry(b, 2, 1<<16) }
func BenchmarkAblationSketch4x16K(b *testing.B) { benchmarkSketchGeometry(b, 4, 1<<14) }
func BenchmarkAblationSketch2x4K(b *testing.B)  { benchmarkSketchGeometry(b, 2, 1<<12) }

// --- hybrid connection preservation: hash-only vs promotion -----------------

func benchmarkHybrid(b *testing.B, promote bool) {
	rng := rand.New(rand.NewSource(2))
	set, err := rules.NewSet([]rules.Rule{{
		Dst:    rules.MustParsePrefix("192.0.2.0/24"),
		Proto:  packet.ProtoTCP,
		PAllow: 0.5,
	}}, true)
	if err != nil {
		b.Fatal(err)
	}
	e, err := enclave.New(enclave.CodeIdentity{Name: "vif-filter", BinarySize: 1 << 20},
		enclave.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	f, err := filter.New(e, set, filter.Config{DisablePromotion: !promote})
	if err != nil {
		b.Fatal(err)
	}
	// A working set of 512 recurring flows (established connections).
	flows := make([]packet.Descriptor, 512)
	for i := range flows {
		flows[i] = packet.Descriptor{
			Tuple: packet.FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.5"),
				SrcPort: uint16(i + 1024), DstPort: 80, Proto: packet.ProtoTCP,
			},
			Size: 512, Ref: packet.NoRef,
		}
	}
	if promote {
		// Warm: first packets queue the flows; the update period promotes.
		for _, d := range flows {
			f.Process(d)
		}
		f.Promote()
	}
	e.ResetMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(flows[i&511])
	}
	b.StopTimer()
	if n := b.N; n > 0 {
		b.ReportMetric(e.VirtualNs()/float64(n), "modeled-ns/pkt")
	}
	st := f.Stats()
	if promote && st.ExactHits == 0 {
		b.Fatal("promotion bench never hit the exact table")
	}
}

func BenchmarkAblationHashOnly(b *testing.B)      { benchmarkHybrid(b, false) }
func BenchmarkAblationHybridPromote(b *testing.B) { benchmarkHybrid(b, true) }

// --- ECall-per-packet vs ring-based data path (§V-A's optimization) ---------

func BenchmarkAblationECallPerPacket(b *testing.B) {
	// What the paper's context-switch optimization avoids: one ECall per
	// packet instead of in-enclave ring polling.
	e, err := enclave.New(enclave.CodeIdentity{Name: "vif-filter", BinarySize: 1 << 20},
		enclave.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	e.ResetMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ChargeECall()
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(e.VirtualNs()/float64(b.N), "modeled-ns/pkt")
	}
}
