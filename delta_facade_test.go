package vif

import (
	"testing"

	"github.com/innetworkfiltering/vif/internal/lb"
	"github.com/innetworkfiltering/vif/internal/packet"
)

// deltaHit builds a flow matching a /24 drop rule over dstIP.
func deltaHit(srcIP, dstIP string) Descriptor {
	return Descriptor{Tuple: FiveTuple{
		SrcIP: packet.MustParseIP(srcIP), DstIP: packet.MustParseIP(dstIP),
		SrcPort: 4000, DstPort: 9, Proto: packet.ProtoUDP,
	}, Size: 64}
}

// TestSessionReconfigureDeltaSerial: on the serial path, a delta installs
// an enforcing rule and drops a previously enforcing one, without
// changing the fleet.
func TestSessionReconfigureDeltaSerial(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	fleet := session.FleetSize()

	blocked := deltaHit("203.0.113.5", "192.0.2.77")
	if got := session.Process(blocked); got != VerdictAllow {
		t.Fatalf("pre-delta verdict %v, want allow (no rule yet)", got)
	}
	add, err := ParseRule("drop udp from 203.0.113.0/24 to 192.0.2.0/24 dport 9")
	if err != nil {
		t.Fatal(err)
	}
	if err := session.ReconfigureDelta([]Rule{add}, nil); err != nil {
		t.Fatal(err)
	}
	if got := session.Process(blocked); got != VerdictDrop {
		t.Fatalf("post-delta verdict %v, want drop", got)
	}
	if session.FleetSize() != fleet {
		t.Fatalf("delta changed the fleet: %d -> %d", fleet, session.FleetSize())
	}

	// Remove the original DNS rule (ID 1 by NewSet assignment): its
	// traffic goes back to default-allow.
	dns := Descriptor{Tuple: FiveTuple{
		SrcIP: packet.MustParseIP("198.18.0.1"), DstIP: packet.MustParseIP("192.0.2.10"),
		SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
	}, Size: 64}
	if got := session.Process(dns); got != VerdictDrop {
		t.Fatalf("DNS rule not enforcing before its removal: %v", got)
	}
	if err := session.ReconfigureDelta(nil, []Rule{{ID: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := session.Process(dns); got != VerdictAllow {
		t.Fatalf("removed DNS rule still enforcing: %v", got)
	}
}

// TestSessionReconfigureDeltaSharedEngine: two victims on one shared
// engine; one pushes a live delta mid-run. Its new rule enforces for its
// own traffic, the other victim's filtering and rule set stay untouched,
// and both keep auditing on their own cadences.
func TestSessionReconfigureDeltaSharedEngine(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	if _, err := d.SharedEngine(SharedEngineConfig{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	defer d.StopSharedEngine()

	sA, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	sB, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sA.StartEngine(EngineConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sB.StartEngine(EngineConfig{}); err != nil {
		t.Fatal(err)
	}
	defer sA.StopEngine()
	defer sB.StopEngine()

	bRulesBefore := sB.Stats()

	// A adds a drop rule for a fresh attack prefix, live.
	add, err := ParseRule("drop udp from 203.0.113.0/24 to 192.0.2.0/24 dport 9")
	if err != nil {
		t.Fatal(err)
	}
	if err := sA.ReconfigureDelta([]Rule{add}, nil); err != nil {
		t.Fatal(err)
	}

	// A's new rule enforces on A's namespace.
	burst := make([]Descriptor, 64)
	for i := range burst {
		burst[i] = deltaHit("203.0.113.9", "192.0.2.77")
		burst[i].Tuple.SrcPort = uint16(1000 + i)
	}
	if n, err := sA.InjectBatch(burst); err != nil || n == 0 {
		t.Fatalf("InjectBatch after delta: n=%d err=%v", n, err)
	}
	engA, _, _ := sA.liveEngine()
	engA.WaitDrained()
	vmA, err := sA.VictimMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if vmA.Dropped == 0 {
		t.Fatalf("A's live-added rule not enforcing: %+v", vmA)
	}

	// B's same-looking traffic is untouched by A's delta (allowed: B never
	// installed that rule).
	for i := range burst {
		burst[i] = deltaHit("203.0.113.9", "192.0.2.77")
		burst[i].Tuple.SrcPort = uint16(1000 + i)
	}
	if n, err := sB.InjectBatch(burst); err != nil || n == 0 {
		t.Fatalf("B InjectBatch: n=%d err=%v", n, err)
	}
	engA.WaitDrained()
	vmB, err := sB.VictimMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if vmB.Dropped != bRulesBefore.Dropped {
		t.Fatalf("A's delta leaked into B's verdicts: dropped %d -> %d", bRulesBefore.Dropped, vmB.Dropped)
	}

	// Both victims can still seal and audit their own epochs.
	if _, err := sA.AuditEngineEpoch(); err != nil {
		t.Fatalf("A audit after delta: %v", err)
	}
	if _, err := sB.AuditEngineEpoch(); err != nil {
		t.Fatalf("B audit after A's delta: %v", err)
	}
}
