package vif

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/bypass"
	"github.com/innetworkfiltering/vif/internal/cluster"
	"github.com/innetworkfiltering/vif/internal/faults"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/secure"
)

// Session is one victim's filtering contract with a Deployment: an
// attested fleet of enclaves running the victim's rules, plus the victim-
// side state needed to verify the contract is honored (the paper's §VI-B
// workflow: authorize → attest → secure channel → submit rules → filter →
// audit logs).
type Session struct {
	victim     bgp.ASN
	deployment *Deployment
	cluster    *cluster.Cluster

	// macKeys holds each attested enclave's log-authentication key,
	// received over the attested channels.
	macKeys map[uint64][32]byte

	verifier *bypass.VictimVerifier
	seq      uint64

	// engine, when non-nil and running, owns the fleet's data plane (see
	// engine.go); the serial methods refuse until it stops.
	engine *Engine

	// attached is set while the session is attached to the deployment's
	// shared multi-victim engine as a rule namespace (StartEngine with
	// Deployment.SharedEngine up). One atomic pointer, swapped whole, so
	// a producer in InjectBatch can never observe the engine of one
	// attachment paired with the namespace id of another while StopEngine
	// detaches concurrently.
	attached atomic.Pointer[attachment]

	// faults is the deterministic fault-injection harness for chaos
	// testing (SetFaultInjector); nil in production. The session consults
	// it on the audit path only — engine-level points ride in through
	// engine.Config.Faults.
	faults *faults.Injector
}

// SetFaultInjector threads the chaos harness through the session's audit
// path (the AuditFailure point). Call before driving traffic; nil (the
// default) disables injection.
func (s *Session) SetFaultInjector(in *faults.Injector) { s.faults = in }

// attachment binds the shared engine and the session's namespace id on it.
type attachment struct {
	eng *Engine
	ns  int
}

// Tolerance is re-exported for callers tuning benign-loss budgets.
func (s *Session) SetLossTolerance(frac float64) { s.verifier.Tolerance = frac }

// RequestFiltering executes the full session-establishment workflow from
// the victim's perspective:
//
//  1. The deployment validates the request against RPKI (§VII: only the
//     prefix owner may have its traffic filtered).
//  2. The deployment spins up an enclave fleet sized for the rules.
//  3. The victim challenges every enclave with a fresh nonce; each quote
//     must chain to the pinned attestation-service root and carry the
//     expected measurement, and binds the enclave's ephemeral channel key.
//  4. Over each attested channel the enclave releases its log-MAC key.
//
// Any failure aborts the session: an unattested enclave is a filtering
// network lying about its filter code.
func RequestFiltering(victim ASN, d *Deployment, set *RuleSet) (*Session, error) {
	if err := d.authorize(victim, set); err != nil {
		return nil, err
	}
	c, err := d.startCluster(set)
	if err != nil {
		return nil, fmt.Errorf("vif: start fleet: %w", err)
	}
	s := &Session{
		victim:     victim,
		deployment: d,
		cluster:    c,
		verifier:   bypass.NewVictimVerifier(),
	}
	if err := s.attestFleet(); err != nil {
		return nil, err
	}
	return s, nil
}

// attestFleet performs step 3-4 for every current enclave. It is rerun
// after reconfigurations that changed the fleet.
func (s *Session) attestFleet() error {
	want := s.deployment.Identity().Measurement()
	root := s.deployment.ServiceRoot()
	s.macKeys = make(map[uint64][32]byte, s.cluster.Size())

	for _, f := range s.cluster.Filters() {
		var nonce [32]byte
		if _, err := rand.Read(nonce[:]); err != nil {
			return fmt.Errorf("vif: nonce: %w", err)
		}

		// Enclave side: ephemeral key share, bound into the quote.
		enclaveKey, err := secure.NewKeyPair()
		if err != nil {
			return err
		}
		rd := secure.BindingReportData(enclaveKey.PublicBytes())
		q, err := s.deployment.platform.GenerateQuote(f.Enclave(), nonce, rd)
		if err != nil {
			return fmt.Errorf("vif: quote enclave %d: %w", f.Enclave().ID(), err)
		}

		// Victim side: verify the chain, the measurement, and the binding.
		if err := attest.VerifyQuote(root, s.deployment.service, q, nonce, want); err != nil {
			return fmt.Errorf("vif: enclave %d failed attestation: %w", f.Enclave().ID(), err)
		}
		if !secure.VerifyBinding(q.ReportData, enclaveKey.PublicBytes()) {
			return fmt.Errorf("vif: enclave %d channel key not bound to quote", f.Enclave().ID())
		}
		victimKey, err := secure.NewKeyPair()
		if err != nil {
			return err
		}
		enclaveChan, err := secure.Establish(enclaveKey, victimKey.PublicBytes(), secure.RoleEnclave)
		if err != nil {
			return err
		}
		victimChan, err := secure.Establish(victimKey, enclaveKey.PublicBytes(), secure.RoleVictim)
		if err != nil {
			return err
		}

		// The enclave releases its log-MAC key through the sealed channel;
		// the untrusted host only ever relays ciphertext.
		mk := f.Enclave().MACKey()
		record := enclaveChan.Seal(mk[:])
		plain, err := victimChan.Open(record)
		if err != nil {
			return fmt.Errorf("vif: enclave %d key release: %w", f.Enclave().ID(), err)
		}
		var key [32]byte
		copy(key[:], plain)
		s.macKeys[f.Enclave().ID()] = key
	}
	return nil
}

// Process pushes one packet through the deployment's data plane and
// returns the verdict (what the filtering network forwards toward the
// victim). Experiment harnesses and examples drive traffic through this.
// An aborted session forwards nothing; while an engine owns the data
// plane (StartEngine), inject through the engine instead — Process then
// refuses by dropping, since the filters are worker-owned.
func (s *Session) Process(d Descriptor) Verdict {
	if s.Aborted() || s.EngineRunning() {
		return VerdictDrop
	}
	return s.cluster.Process(d)
}

// ObserveDelivered records a packet that actually arrived at the victim
// network (the victim's local log for bypass detection). In a deployment
// this is the victim's capture path; in simulations the caller invokes it
// for packets that survive the downstream path.
func (s *Session) ObserveDelivered(t FiveTuple) {
	s.verifier.Observe(t)
}

// AuditOutgoing fetches authenticated outgoing logs from every enclave,
// merges them, and compares against the victim's local log — the §III-B
// bypass check. A non-Clean verdict is evidence of injection-after-filter
// or drop-after-filter misbehavior by the filtering network.
func (s *Session) AuditOutgoing() (bypass.Verdict, error) {
	if s.Aborted() {
		return bypass.Verdict{}, ErrAborted
	}
	if s.EngineRunning() {
		return bypass.Verdict{}, ErrEngineRunning
	}
	s.seq++
	snaps, _, err := s.deployment.snapshot(s.cluster, filter.LogOutgoing, s.seq)
	if err != nil {
		return bypass.Verdict{}, fmt.Errorf("vif: fetch logs: %w", err)
	}
	merged, err := bypass.MergeSnapshots(s.macKeys, snaps)
	if err != nil {
		return bypass.Verdict{}, err
	}
	return s.verifier.CheckSketch(merged)
}

// MisrouteReports returns the number of load-balancer misrouting events
// the enclaves detected and reported (§IV-B). Safe to call while the
// engine runs (the filters' counters are atomic blocks).
func (s *Session) MisrouteReports() uint64 {
	return s.cluster.TotalStats().Misrouted
}

// Stats exposes fleet-wide filtering counters. Safe to call while the
// engine runs: the workers publish counters once per burst through
// atomics, so live monitoring never races the data plane.
func (s *Session) Stats() filter.Stats { return s.cluster.TotalStats() }

// FleetSize returns the number of enclaves currently filtering.
func (s *Session) FleetSize() int { return s.cluster.Size() }

// Reconfigure runs one Figure 5 redistribution round from the fleet's
// measured per-rule traffic, then re-attests any newly spawned enclaves.
func (s *Session) Reconfigure() error {
	if s.Aborted() {
		return ErrAborted
	}
	if s.EngineRunning() {
		return ErrEngineRunning
	}
	measured := s.cluster.MeasuredBytes(true)
	if err := s.cluster.Reconfigure(measured); err != nil {
		return err
	}
	return s.attestFleet()
}

// ReconfigureDelta pushes an incremental rule-set change — "add these
// prefixes, drop those" — without rerunning the optimizer or spawning
// enclaves: each member filter diffs its immutable trie snapshot
// (reusing untouched subtrees, copying only the delta's paths — the
// data-plane table update is O(delta), with amortized compaction and
// densify rebuilds bounding slack and priority growth), removals are
// routed to every shard holding the rule, adds are placed greedily on
// the lightest member, and the balancer programme is rebuilt to cover
// the new set. Planning itself is O(rules) control-plane map/copy work
// (membership, foreign views, shares — no trie work); what a full
// Reconfigure additionally pays and a delta skips is the optimizer, N
// trie rebuilds, learned-state loss, and — since the fleet never changes
// shape — the whole re-attestation round. That is what makes mid-attack
// rule updates a data-plane-speed operation (§IV: updates must not stall
// the enclave path).
//
// Unlike the serial-only Reconfigure, this works in BOTH modes: serially
// it applies directly to the fleet; in engine mode (private or attached
// to a shared engine) the per-shard deltas are executed by the shard
// workers at batch boundaries (Engine.ReconfigureNamespaceDelta) while
// every victim keeps filtering, and the refreshed balancer swaps in with
// the rules. Adds carrying ID 0 get fresh IDs assigned. On error the
// fleet may hold the delta on some shards only; Reconfigure (the
// full-rebuild oracle) is the repair.
func (s *Session) ReconfigureDelta(adds, removes []Rule) error {
	if s.Aborted() {
		return ErrAborted
	}
	eng, ns, _ := s.liveEngine()
	if eng == nil {
		return s.cluster.ApplyDelta(adds, removes)
	}
	plan, err := s.cluster.PlanDelta(adds, removes)
	if err != nil {
		return err
	}
	bal := plan.Balancer()
	if err := eng.ReconfigureNamespaceDelta(int(ns), plan.PerShard, bal.Route, bal.RouteBatch); err != nil {
		return fmt.Errorf("vif: delta reconfigure: %w", err)
	}
	s.cluster.CommitDelta(plan)
	return nil
}

// NewRound starts a fresh audit window on both sides (the paper suggests
// short rounds — a few minutes — so victims can abort quickly). In engine
// mode, AuditEngineEpoch's rotation plays this role; NewRound is a no-op
// while the engine owns the logs.
func (s *Session) NewRound() {
	if s.EngineRunning() {
		return
	}
	for _, f := range s.cluster.Filters() {
		f.ResetLogs()
	}
	s.verifier.Reset()
}

// Abort tears down the session (the victim's remedy once misbehavior is
// detected: §VII "any one of them can abort the temporary contract"). A
// running engine is stopped first so no worker touches a dead fleet.
func (s *Session) Abort() {
	s.StopEngine()
	s.cluster = nil
	s.macKeys = nil
}

// Aborted reports whether the session has been torn down.
func (s *Session) Aborted() bool { return s.cluster == nil }

// ErrAborted is returned when using a torn-down session.
var ErrAborted = errors.New("vif: session aborted")
