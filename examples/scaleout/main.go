// Scaleout demonstrates §IV at the paper's headline scale: 150,000 filter
// rules carrying 500 Gb/s of lognormally distributed traffic, distributed
// across ~10 Gb/s enclaves by the greedy algorithm (Algorithm 1), then a
// traffic shift and a Figure 5 master/slave redistribution round.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/innetworkfiltering/vif/internal/dist"
	"github.com/innetworkfiltering/vif/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		k     = 150000
		total = 500e9 // 500 Gb/s
	)
	rng := rand.New(rand.NewSource(1))

	// Measured per-rule bandwidths (lognormal, as in §V-C), pre-split so
	// no single rule exceeds one enclave's capacity.
	b := netsim.LognormalBandwidths(rng, k, total, netsim.DefaultSigma)
	b, splits := netsim.ClampToCapacity(b, 10e9)
	in := dist.Instance{
		B: b, G: 10e9, M: 92e6, U: 92e6 / 3000, V: 2e6, Alpha: 1, Lambda: 0.2,
	}
	fmt.Printf("problem: %d rules (%d oversize splits), %.0f Gb/s total\n",
		len(in.B), splits, total/1e9)
	fmt.Printf("minimum enclaves: %d (bandwidth %.0f Gb/s each, ≤%d rules each)\n",
		in.MinEnclaves(), in.G/1e9, in.MaxRulesPerEnclave())

	start := time.Now()
	alloc, err := dist.Greedy(in, dist.GreedyOptions{})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := in.Check(alloc); err != nil {
		return fmt.Errorf("allocation failed validation: %w", err)
	}
	fmt.Printf("greedy solved in %v: %d enclaves, bottleneck %.2f Gb/s / %d rules\n",
		elapsed.Round(time.Millisecond), alloc.N, alloc.MaxLoad/1e9, alloc.MaxRules)
	fmt.Printf("(paper: no more than 40 s for the same sweep)\n\n")

	// Traffic shifts: a DDoS pulse concentrates on 1% of the rules.
	// The Figure 5 protocol recomputes placements from fresh B_i.
	fmt.Println("traffic shift: 100x surge on 1% of rules; redistributing...")
	for i := 0; i < len(in.B); i += 100 {
		in.B[i] *= 100
	}
	in.B, _ = netsim.ClampToCapacity(in.B, 10e9)
	start = time.Now()
	realloc, err := dist.Greedy(in, dist.GreedyOptions{})
	if err != nil {
		return err
	}
	if err := in.Check(realloc); err != nil {
		return fmt.Errorf("reallocation failed validation: %w", err)
	}
	fmt.Printf("redistribution in %v: %d enclaves, bottleneck %.2f Gb/s / %d rules\n",
		time.Since(start).Round(time.Millisecond), realloc.N,
		realloc.MaxLoad/1e9, realloc.MaxRules)
	fmt.Println("near-real-time reconfiguration at 150K-rule scale — the paper's §V-C claim")
	return nil
}
