// Quickstart walks the full VIF workflow from the paper's §VI-B in ~80
// lines: a DDoS victim authorizes itself via RPKI, attests the filtering
// network's enclaves, submits filter rules over the attested channel,
// traffic gets filtered, and the victim audits the enclave packet logs to
// confirm the network executed the rules faithfully.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/innetworkfiltering/vif"
	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rpki"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const victimAS = vif.ASN(64500)

	// The attestation service (IAS analogue) and the public RPKI are
	// pre-existing infrastructure.
	service, err := attest.NewService()
	if err != nil {
		return err
	}
	registry := rpki.NewRegistry()
	if err := registry.Add(rpki.ROA{
		Prefix: rules.MustParsePrefix("192.0.2.0/24"), ASN: victimAS, MaxLength: 32,
	}); err != nil {
		return err
	}

	// An IXP stands up a VIF filtering service.
	ixp, err := vif.NewDeployment(vif.DeploymentConfig{Name: "demo-ix"}, service, registry)
	if err != nil {
		return err
	}
	fmt.Printf("deployment %q, enclave measurement %x\n",
		ixp.Name(), ixp.Identity().Measurement())

	// The victim, under a DNS amplification attack, writes its rules...
	drop, err := vif.ParseRule("drop udp from any to 192.0.2.0/24 dport 53")
	if err != nil {
		return err
	}
	limit, err := vif.ParseRule("drop 50% tcp from any to 192.0.2.0/24 dport 80")
	if err != nil {
		return err
	}
	set, err := vif.NewRuleSet([]vif.Rule{drop, limit}, true)
	if err != nil {
		return err
	}

	// ...and requests filtering: RPKI authorization, per-enclave remote
	// attestation, attested key exchange, rule submission.
	session, err := vif.RequestFiltering(victimAS, ixp, set)
	if err != nil {
		return err
	}
	fmt.Printf("session established: %d attested enclave(s)\n", session.FleetSize())

	// The attack plus legitimate traffic hits the IXP.
	rng := rand.New(rand.NewSource(1))
	victimIP := packet.MustParseIP("192.0.2.10")
	for i := 0; i < 20000; i++ {
		var tp vif.FiveTuple
		if i%2 == 0 {
			tp = vif.FiveTuple{ // amplification flood
				SrcIP: rng.Uint32(), DstIP: victimIP,
				SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
			}
		} else {
			tp = vif.FiveTuple{ // legitimate HTTPS
				SrcIP: rng.Uint32(), DstIP: victimIP,
				SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443, Proto: packet.ProtoTCP,
			}
		}
		if session.Process(vif.Descriptor{Tuple: tp, Size: 512}) == vif.VerdictAllow {
			session.ObserveDelivered(tp) // what actually reaches the victim
		}
	}
	st := session.Stats()
	fmt.Printf("filtered: %d dropped, %d allowed of %d packets\n",
		st.Dropped, st.Allowed, st.Processed)

	// Finally the victim audits: do the enclaves' authenticated outgoing
	// logs match what it received?
	verdict, err := session.AuditOutgoing()
	if err != nil {
		return err
	}
	fmt.Printf("audit: clean=%v (%s)\n", verdict.Clean, verdict.Detail)
	if !verdict.Clean {
		session.Abort()
		return fmt.Errorf("filtering network misbehaved — contract aborted")
	}
	return nil
}
