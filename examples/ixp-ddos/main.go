// Ixp-ddos reproduces the paper's §VI deployment story end to end on a
// synthetic Internet: a Mirai-style botnet floods a stub-AS victim; the
// victim buys VIF filtering at the largest IXP in each region; the
// simulation shows how much of the attack the VIF IXPs can filter
// (Figure 11's per-victim datapoint) and then actually runs the filtering
// deployment at one IXP against the flows that cross it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/innetworkfiltering/vif"
	"github.com/innetworkfiltering/vif/internal/attack"
	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/ixp"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rpki"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A synthetic Internet: 5 regions, tier-1 clique, regional tier-2s,
	//    stub edge ASes — and the Table III IXPs on top of it.
	inet, err := bgp.Generate(bgp.GenConfig{
		Regions: 5, Tier1PerRegion: 2, Tier2PerRegion: 25, StubsPerRegion: 300, Seed: 7,
	})
	if err != nil {
		return err
	}
	ixps, err := ixp.Build(inet, ixp.BuildConfig{Seed: 8})
	if err != nil {
		return err
	}
	bots, err := attack.MiraiBots(inet, 20000, 9)
	if err != nil {
		return err
	}
	fmt.Printf("internet: %d ASes; botnet: %d bots across %d ASes\n",
		inet.Topo.Len(), bots.Total(), len(bots.PerAS))

	// 2. Pick a victim and measure which VIF IXPs its attack paths cross.
	victimAS := inet.Stubs[0][17]
	selected := ixp.SelectTopN(ixps, 1) // the top IXP per region, 5 globally
	cov, err := ixp.Coverage(inet.Topo, []bgp.ASN{victimAS}, bots, selected)
	if err != nil {
		return err
	}
	fmt.Printf("victim AS%d: %.0f%% of bot traffic crosses a top-1-per-region VIF IXP\n",
		victimAS, cov.Median*100)

	// 3. Identify the busiest IXP on the attack paths and deploy VIF there.
	tree, err := inet.Topo.Routes(victimAS)
	if err != nil {
		return err
	}
	best, bestIPs := selected[0], 0
	for _, x := range selected {
		ips := 0
		for src, n := range bots.PerAS {
			if path, err := tree.Path(src); err == nil && x.Transits(path) {
				ips += n
			}
		}
		if ips > bestIPs {
			best, bestIPs = x, ips
		}
	}
	fmt.Printf("busiest on-path IXP: %s (%d bot IPs transit it)\n", best.Name, bestIPs)

	service, err := attest.NewService()
	if err != nil {
		return err
	}
	registry := rpki.NewRegistry()
	if err := registry.Add(rpki.ROA{
		Prefix: rules.MustParsePrefix("192.0.2.0/24"), ASN: victimAS, MaxLength: 32,
	}); err != nil {
		return err
	}
	deployment, err := vif.NewDeployment(vif.DeploymentConfig{Name: best.Name}, service, registry)
	if err != nil {
		return err
	}

	// 4. The victim's rule: drop the characteristic Mirai flood (TCP SYN
	//    floods to port 80 here abstracted as a 90% drop of HTTP flows).
	r, err := vif.ParseRule("drop 90% tcp from any to 192.0.2.0/24 dport 80")
	if err != nil {
		return err
	}
	set, err := vif.NewRuleSet([]vif.Rule{r}, true)
	if err != nil {
		return err
	}
	session, err := vif.RequestFiltering(victimAS, deployment, set)
	if err != nil {
		return err
	}
	fmt.Printf("VIF session at %s: %d attested enclave(s)\n", best.Name, session.FleetSize())

	// 5. Replay the bot flows that transit this IXP through the filters.
	rng := rand.New(rand.NewSource(10))
	victimIP := packet.MustParseIP("192.0.2.10")
	processed, dropped := 0, 0
	for src, n := range bots.PerAS {
		path, err := tree.Path(src)
		if err != nil || !best.Transits(path) {
			continue
		}
		for i := 0; i < n; i++ {
			tp := vif.FiveTuple{
				SrcIP: rng.Uint32(), DstIP: victimIP,
				SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 80, Proto: packet.ProtoTCP,
			}
			processed++
			if session.Process(vif.Descriptor{Tuple: tp, Size: 64}) == vif.VerdictDrop {
				dropped++
			} else {
				session.ObserveDelivered(tp)
			}
		}
	}
	fmt.Printf("flood through %s: %d flows, %d dropped (%.0f%%)\n",
		best.Name, processed, dropped, float64(dropped)/float64(processed)*100)

	// 6. The victim still verifies the IXP executed the rules faithfully.
	verdict, err := session.AuditOutgoing()
	if err != nil {
		return err
	}
	fmt.Printf("audit: clean=%v (%s)\n", verdict.Clean, verdict.Detail)
	return nil
}
