// Bypass-detection demonstrates the paper's §III-B threat scenarios: a
// *malicious* filtering network that (1) drops filter-approved packets to
// save bandwidth, (2) re-injects packets the filter dropped, and (3)
// silently discards a neighbor AS's traffic before it reaches the filter
// ("discriminating neighboring ASes", the paper's Goal-1 attack). Each
// misbehavior is caught by comparing local packet logs against the
// enclave's authenticated count-min-sketch logs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/innetworkfiltering/vif/internal/bypass"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	set, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53"),
	}, true)
	if err != nil {
		return err
	}
	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "1.0.0", BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		return err
	}
	f, err := filter.New(e, set, filter.Config{})
	if err != nil {
		return err
	}

	victim := bypass.NewVictimVerifier()
	neighborA := bypass.NewNeighborVerifier() // the discriminated AS
	neighborB := bypass.NewNeighborVerifier() // the favored AS

	// The malicious filtering network's behavior:
	const (
		dropAfterEvery  = 5 // drop every 5th allowed packet post-filter
		injectAfter     = 300
		dropBeforeEvery = 3 // drop every 3rd packet from neighbor A pre-filter
	)

	rng := rand.New(rand.NewSource(42))
	victimIP := packet.MustParseIP("192.0.2.10")
	for i := 0; i < 30000; i++ {
		legit := vifTuple(rng, victimIP)
		fromA := i%2 == 0
		if fromA {
			neighborA.Observe(legit)
			// Goal-1 discrimination: traffic delivered by neighbor A is
			// silently dropped before the filter ever sees it.
			if i%dropBeforeEvery == 0 {
				continue
			}
		} else {
			neighborB.Observe(legit)
		}
		if f.Process(packet.Descriptor{Tuple: legit, Size: 512, Ref: packet.NoRef}) != filter.VerdictAllow {
			continue
		}
		// Goal-2 cost saving: drop some approved packets after the filter.
		if i%dropAfterEvery == 0 {
			continue
		}
		victim.Observe(legit)
	}
	// Injection after filtering: attack packets pushed around the filter.
	for i := 0; i < injectAfter; i++ {
		victim.Observe(packet.FiveTuple{
			SrcIP: packet.MustParseIP("10.6.6.6") + uint32(i), DstIP: victimIP,
			SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
		})
	}

	// --- Verification time ---
	key := e.MACKey() // victims/neighbors receive this over attested channels

	outSnap, err := f.Snapshot(filter.LogOutgoing, 1)
	if err != nil {
		return err
	}
	v, err := victim.Check(key, outSnap)
	if err != nil {
		return err
	}
	fmt.Printf("victim audit:    clean=%v\n  %s\n", v.Clean, v.Detail)

	inSnap, err := f.Snapshot(filter.LogIncoming, 2)
	if err != nil {
		return err
	}
	a, err := neighborA.Check(key, inSnap)
	if err != nil {
		return err
	}
	fmt.Printf("neighbor A audit: clean=%v\n  %s\n", a.Clean, a.Detail)

	inSnap2, err := f.Snapshot(filter.LogIncoming, 3)
	if err != nil {
		return err
	}
	b, err := neighborB.Check(key, inSnap2)
	if err != nil {
		return err
	}
	fmt.Printf("neighbor B audit: clean=%v\n  %s\n", b.Clean, b.Detail)

	if v.Clean || a.Clean {
		return fmt.Errorf("misbehavior went undetected")
	}
	if !b.Clean {
		return fmt.Errorf("false positive against the honest-served neighbor")
	}
	fmt.Println("\nall three misbehaviors detected; the favored neighbor sees a clean log")
	return nil
}

func vifTuple(rng *rand.Rand, victimIP uint32) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   rng.Uint32() | 0x80000000, // outside 10/8: legitimate
		DstIP:   victimIP,
		SrcPort: uint16(rng.Intn(60000) + 1),
		DstPort: 443,
		Proto:   packet.ProtoTCP,
	}
}
