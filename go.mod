module github.com/innetworkfiltering/vif

go 1.24
