#!/bin/sh
# Runs the filter hot-path benchmarks (scalar BenchmarkFilterProcess vs
# batched BenchmarkFilterBatch on the allow-heavy packet-train workload)
# and writes the results as JSON so the batch path's advantage is recorded
# per PR and cannot silently regress to scalar speed. Usage:
#
#   scripts/bench_filter.sh [output.json]     # default BENCH_filter.json
#   BENCHTIME=1000000x scripts/bench_filter.sh # longer runs
#
# The JSON records, per path, the wall-clock ns per packet, the derived
# packets/sec, and the SGX cost model's virtual ns per packet, plus the
# batch/scalar packets-per-second speedup (acceptance floor: 2x).
set -e

out="${1:-BENCH_filter.json}"
benchtime="${BENCHTIME:-300000x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkFilter(Process|Batch)$' -benchtime "$benchtime" -count 1 . | tee "$tmp"

awk -v benchtime="$benchtime" '
/^BenchmarkFilter(Process|Batch)/ {
    name = $1
    sub(/-[0-9]+$/, "", name)                 # strip the -GOMAXPROCS suffix
    path = (name ~ /Batch/) ? "batch" : "scalar"
    ns = ""; modeled = ""; wall = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "modeled-ns/pkt") modeled = $i
        if ($(i+1) == "wall-Mpps") wall = $i
    }
    pps[path] = (ns > 0) ? 1e9 / ns : 0
    n++
    line[n] = sprintf("    {\"path\": \"%s\", \"ns_per_pkt\": %s, \"pps\": %.0f, \"modeled_ns_per_pkt\": %s, \"wall_mpps\": %s}", path, ns, pps[path], modeled, wall)
}
END {
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkFilterProcess vs BenchmarkFilterBatch\",\n"
    printf "  \"workload\": \"allow-heavy, 3000 rules, 64B frames, 4-packet trains, 64-packet bursts\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", line[i], (i < n ? "," : "")
    printf "  ],\n"
    speedup = (pps["scalar"] > 0) ? pps["batch"] / pps["scalar"] : 0
    printf "  \"batch_over_scalar_pps\": %.2f\n", speedup
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"

# Guard: the batch path must stay ≥2x the scalar path in packets/sec.
awk '/"batch_over_scalar_pps"/ {
    v = $2 + 0
    if (v < 2.0) { printf "FAIL: batch/scalar speedup %.2f < 2.0\n", v; exit 1 }
    printf "batch/scalar speedup: %.2fx (floor 2.0)\n", v
}' "$out"
