#!/bin/sh
# Runs the filter hot-path benchmarks and writes the results as JSON so
# the data path's advantages are recorded per PR and cannot silently
# regress. Three benchmark families:
#
#   - scalar BenchmarkFilterProcess vs batched BenchmarkFilterBatch on the
#     allow-heavy packet-train workload (gate: batch >= 2x scalar pps);
#   - the compiled-classifier flatness sweep, BenchmarkClassifyBatch{1k,
#     10k,100k} against the retained trie's candidate-scan path
#     BenchmarkTrieScanPath{1k,10k,100k} on the reflection-defense rule
#     shape (unique dst /28 per rule, 256-entry src /16 vocabulary). The
#     classifier resolves one interval per attribute and intersects <= 5
#     rule bitsets, so its ns/pkt must be rule-count-invariant (gate:
#     100k <= 2x its own 1k figure) while the trie's per-node linear scan
#     degrades superlinearly — recorded side by side, not just asserted;
#   - the classifier probe itself, BenchmarkClassifyProbeOld (per-packet
#     binary search over the boundary tables — the retained oracle) vs
#     BenchmarkClassifyProbeNew (chunked direct-index tables probed
#     breadth-first over 64-packet bursts via ClassifyBatch) at 100k
#     rules (gate: new <= old/2, i.e. >= 2x probe speedup).
#
# Usage:
#
#   scripts/bench_filter.sh [output.json]       # default BENCH_filter.json
#   BENCHTIME=1000000x scripts/bench_filter.sh  # longer batch/scalar runs
#   CLASSIFY_BENCHTIME=100000x ...              # longer flatness runs
#   PROBE_BENCHTIME=1000000x ...                # longer probe runs
#   ONLY=classify scripts/bench_filter.sh       # just the flatness gate
#                                               # (make bench-classify)
#   ONLY=classify-probe scripts/bench_filter.sh # just the probe gate
#                                               # (make bench-classify-probe)
#
# The JSON records, per path, the wall-clock ns per packet, the derived
# packets/sec, and the SGX cost model's virtual ns per packet; per rule
# count, the classify and trie ns/pkt; per probe implementation, the
# ns/pkt and their ratio; plus host_cpus and go_version so wall-clock
# numbers can be compared across recorded runs honestly.
set -e

out="${1:-BENCH_filter.json}"
benchtime="${BENCHTIME:-300000x}"
classify_benchtime="${CLASSIFY_BENCHTIME:-50000x}"
probe_benchtime="${PROBE_BENCHTIME:-200000x}"
only="${ONLY:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

host_cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
go_version="$(go env GOVERSION)"

: > "$tmp"
if [ -z "$only" ]; then
    go test -run '^$' -bench 'BenchmarkFilter(Process|Batch)$' \
        -benchtime "$benchtime" -count 1 . | tee -a "$tmp"
fi
if [ -z "$only" ] || [ "$only" = "classify" ]; then
    go test -run '^$' -bench 'Benchmark(ClassifyBatch|TrieScanPath)(1k|10k|100k)$' \
        -benchtime "$classify_benchtime" -count 1 . | tee -a "$tmp"
fi
if [ -z "$only" ] || [ "$only" = "classify-probe" ]; then
    go test -run '^$' -bench 'BenchmarkClassifyProbe(Old|New)$' \
        -benchtime "$probe_benchtime" -count 1 . | tee -a "$tmp"
fi

awk -v benchtime="$benchtime" -v cbenchtime="$classify_benchtime" \
    -v pbenchtime="$probe_benchtime" \
    -v cpus="$host_cpus" -v gover="$go_version" -v only="$only" '
/^BenchmarkFilter(Process|Batch)/ {
    name = $1
    sub(/-[0-9]+$/, "", name)                 # strip the -GOMAXPROCS suffix
    path = (name ~ /Batch/) ? "batch" : "scalar"
    ns = ""; modeled = ""; wall = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "modeled-ns/pkt") modeled = $i
        if ($(i+1) == "wall-Mpps") wall = $i
    }
    pps[path] = (ns > 0) ? 1e9 / ns : 0
    n++
    line[n] = sprintf("    {\"path\": \"%s\", \"ns_per_pkt\": %s, \"pps\": %.0f, \"modeled_ns_per_pkt\": %s, \"wall_mpps\": %s}", path, ns, pps[path], modeled, wall)
}
/^BenchmarkClassifyBatch/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    k = name
    sub(/^BenchmarkClassifyBatch/, "", k)
    for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") cns[k] = $i
}
/^BenchmarkTrieScanPath/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    k = name
    sub(/^BenchmarkTrieScanPath/, "", k)
    for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") tns[k] = $i
}
/^BenchmarkClassifyProbe/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    which = (name ~ /New/) ? "new" : "old"
    for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") pns[which] = $i
}
END {
    split("1k 10k 100k", ks, " ")
    rules["1k"] = 1000; rules["10k"] = 10000; rules["100k"] = 100000
    cm = 0
    for (j = 1; j <= 3; j++) {
        k = ks[j]
        if (cns[k] == "" && tns[k] == "") continue
        cm++
        cline[cm] = sprintf("    {\"rules\": %d, \"classify_batch_ns_per_pkt\": %s, \"trie_ns_per_lookup\": %s}", rules[k], cns[k] == "" ? "null" : cns[k], tns[k] == "" ? "null" : tns[k])
    }
    flat = (cns["1k"] > 0 && cns["100k"] > 0) ? cns["100k"] / cns["1k"] : 0
    flatgate = (flat > 0 && flat <= 2.0) ? "pass" : "FAIL"

    pm = 0
    if (pns["old"] != "") { pm++; pline[pm] = sprintf("    {\"probe\": \"binary_search_scalar\", \"rules\": 100000, \"ns_per_pkt\": %s}", pns["old"]) }
    if (pns["new"] != "") { pm++; pline[pm] = sprintf("    {\"probe\": \"direct_index_batch\", \"rules\": 100000, \"ns_per_pkt\": %s}", pns["new"]) }
    probe = (pns["old"] > 0 && pns["new"] > 0) ? pns["old"] / pns["new"] : 0
    probegate = (probe >= 2.0) ? "pass" : "FAIL"

    if (only == "classify") {
        printf "{\n"
        printf "  \"benchmark\": \"BenchmarkClassifyBatch vs BenchmarkTrieScanPath\",\n"
        printf "  \"workload\": \"reflection shape: unique dst /28 per rule, 256 src /16 vocab, sport in reflection set, dport any, UDP\",\n"
        printf "  \"benchtime\": \"%s\",\n", cbenchtime
        printf "  \"host_cpus\": %d,\n", cpus
        printf "  \"go_version\": \"%s\",\n", gover
        printf "  \"classify\": [\n"
        for (i = 1; i <= cm; i++) printf "%s%s\n", cline[i], (i < cm ? "," : "")
        printf "  ],\n"
        printf "  \"classify_100k_over_1k\": %.2f,\n", flat
        printf "  \"gates\": {\"classify_flat_100k_le_2x_1k\": \"%s\"}\n", flatgate
        printf "}\n"
        exit
    }

    if (only == "classify-probe") {
        printf "{\n"
        printf "  \"benchmark\": \"BenchmarkClassifyProbeOld vs BenchmarkClassifyProbeNew\",\n"
        printf "  \"workload\": \"reflection shape at 100k rules, rule-hitting tuples, 64-packet bursts on the new path\",\n"
        printf "  \"benchtime\": \"%s\",\n", pbenchtime
        printf "  \"host_cpus\": %d,\n", cpus
        printf "  \"go_version\": \"%s\",\n", gover
        printf "  \"classify_probe\": [\n"
        for (i = 1; i <= pm; i++) printf "%s%s\n", pline[i], (i < pm ? "," : "")
        printf "  ],\n"
        printf "  \"classify_probe_speedup\": %.2f,\n", probe
        printf "  \"gates\": {\"classify_probe_speedup_ge_2x\": \"%s\"}\n", probegate
        printf "}\n"
        exit
    }

    speedup = (pps["scalar"] > 0) ? pps["batch"] / pps["scalar"] : 0
    batchgate = (speedup >= 2.0) ? "pass" : "FAIL"
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkFilterProcess vs BenchmarkFilterBatch\",\n"
    printf "  \"workload\": \"allow-heavy, 3000 rules, 64B frames, 4-packet trains, 64-packet bursts\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"host_cpus\": %d,\n", cpus
    printf "  \"go_version\": \"%s\",\n", gover
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", line[i], (i < n ? "," : "")
    printf "  ],\n"
    printf "  \"classify\": [\n"
    for (i = 1; i <= cm; i++) printf "%s%s\n", cline[i], (i < cm ? "," : "")
    printf "  ],\n"
    printf "  \"classify_probe\": [\n"
    for (i = 1; i <= pm; i++) printf "%s%s\n", pline[i], (i < pm ? "," : "")
    printf "  ],\n"
    printf "  \"classify_100k_over_1k\": %.2f,\n", flat
    printf "  \"classify_probe_speedup\": %.2f,\n", probe
    printf "  \"batch_over_scalar_pps\": %.2f,\n", speedup
    printf "  \"gates\": {\"batch_over_scalar_2x\": \"%s\", \"classify_flat_100k_le_2x_1k\": \"%s\", \"classify_probe_speedup_ge_2x\": \"%s\"}\n", batchgate, flatgate, probegate
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"

if grep -q '"FAIL"' "$out"; then
    echo "bench_filter: gate FAILED:" >&2
    grep '"gates"' "$out" >&2
    exit 1
fi
grep '"gates"' "$out"
