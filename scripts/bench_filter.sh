#!/bin/sh
# Runs the filter hot-path benchmarks and writes the results as JSON so
# the data path's advantages are recorded per PR and cannot silently
# regress. Two benchmark families:
#
#   - scalar BenchmarkFilterProcess vs batched BenchmarkFilterBatch on the
#     allow-heavy packet-train workload (gate: batch >= 2x scalar pps);
#   - the compiled-classifier flatness sweep, BenchmarkClassifyBatch{1k,
#     10k,100k} against the retained trie's candidate-scan path
#     BenchmarkTrieScanPath{1k,10k,100k} on the reflection-defense rule
#     shape (unique dst /28 per rule, 256-entry src /16 vocabulary). The
#     classifier probes one range table per attribute and intersects <= 5
#     rule bitsets, so its ns/pkt must be rule-count-invariant (gate:
#     100k <= 2x its own 1k figure) while the trie's per-node linear scan
#     degrades superlinearly — recorded side by side, not just asserted.
#
# Usage:
#
#   scripts/bench_filter.sh [output.json]     # default BENCH_filter.json
#   BENCHTIME=1000000x scripts/bench_filter.sh # longer batch/scalar runs
#   CLASSIFY_BENCHTIME=100000x ...             # longer flatness runs
#   ONLY=classify scripts/bench_filter.sh      # just the flatness gate
#                                              # (make bench-classify)
#
# The JSON records, per path, the wall-clock ns per packet, the derived
# packets/sec, and the SGX cost model's virtual ns per packet; per rule
# count, the classify and trie ns/pkt; plus host_cpus and go_version so
# wall-clock numbers can be compared across recorded runs honestly.
set -e

out="${1:-BENCH_filter.json}"
benchtime="${BENCHTIME:-300000x}"
classify_benchtime="${CLASSIFY_BENCHTIME:-50000x}"
only="${ONLY:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

host_cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
go_version="$(go env GOVERSION)"

: > "$tmp"
if [ "$only" != "classify" ]; then
    go test -run '^$' -bench 'BenchmarkFilter(Process|Batch)$' \
        -benchtime "$benchtime" -count 1 . | tee -a "$tmp"
fi
if [ -z "$only" ] || [ "$only" = "classify" ]; then
    go test -run '^$' -bench 'Benchmark(ClassifyBatch|TrieScanPath)(1k|10k|100k)$' \
        -benchtime "$classify_benchtime" -count 1 . | tee -a "$tmp"
fi

awk -v benchtime="$benchtime" -v cbenchtime="$classify_benchtime" \
    -v cpus="$host_cpus" -v gover="$go_version" -v only="$only" '
/^BenchmarkFilter(Process|Batch)/ {
    name = $1
    sub(/-[0-9]+$/, "", name)                 # strip the -GOMAXPROCS suffix
    path = (name ~ /Batch/) ? "batch" : "scalar"
    ns = ""; modeled = ""; wall = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "modeled-ns/pkt") modeled = $i
        if ($(i+1) == "wall-Mpps") wall = $i
    }
    pps[path] = (ns > 0) ? 1e9 / ns : 0
    n++
    line[n] = sprintf("    {\"path\": \"%s\", \"ns_per_pkt\": %s, \"pps\": %.0f, \"modeled_ns_per_pkt\": %s, \"wall_mpps\": %s}", path, ns, pps[path], modeled, wall)
}
/^BenchmarkClassifyBatch/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    k = name
    sub(/^BenchmarkClassifyBatch/, "", k)
    for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") cns[k] = $i
}
/^BenchmarkTrieScanPath/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    k = name
    sub(/^BenchmarkTrieScanPath/, "", k)
    for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") tns[k] = $i
}
END {
    split("1k 10k 100k", ks, " ")
    rules["1k"] = 1000; rules["10k"] = 10000; rules["100k"] = 100000
    cm = 0
    for (j = 1; j <= 3; j++) {
        k = ks[j]
        if (cns[k] == "" && tns[k] == "") continue
        cm++
        cline[cm] = sprintf("    {\"rules\": %d, \"classify_batch_ns_per_pkt\": %s, \"trie_ns_per_lookup\": %s}", rules[k], cns[k] == "" ? "null" : cns[k], tns[k] == "" ? "null" : tns[k])
    }
    flat = (cns["1k"] > 0 && cns["100k"] > 0) ? cns["100k"] / cns["1k"] : 0
    flatgate = (flat > 0 && flat <= 2.0) ? "pass" : "FAIL"

    if (only == "classify") {
        printf "{\n"
        printf "  \"benchmark\": \"BenchmarkClassifyBatch vs BenchmarkTrieScanPath\",\n"
        printf "  \"workload\": \"reflection shape: unique dst /28 per rule, 256 src /16 vocab, sport in reflection set, dport any, UDP\",\n"
        printf "  \"benchtime\": \"%s\",\n", cbenchtime
        printf "  \"host_cpus\": %d,\n", cpus
        printf "  \"go_version\": \"%s\",\n", gover
        printf "  \"classify\": [\n"
        for (i = 1; i <= cm; i++) printf "%s%s\n", cline[i], (i < cm ? "," : "")
        printf "  ],\n"
        printf "  \"classify_100k_over_1k\": %.2f,\n", flat
        printf "  \"gates\": {\"classify_flat_100k_le_2x_1k\": \"%s\"}\n", flatgate
        printf "}\n"
        exit
    }

    speedup = (pps["scalar"] > 0) ? pps["batch"] / pps["scalar"] : 0
    batchgate = (speedup >= 2.0) ? "pass" : "FAIL"
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkFilterProcess vs BenchmarkFilterBatch\",\n"
    printf "  \"workload\": \"allow-heavy, 3000 rules, 64B frames, 4-packet trains, 64-packet bursts\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"host_cpus\": %d,\n", cpus
    printf "  \"go_version\": \"%s\",\n", gover
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", line[i], (i < n ? "," : "")
    printf "  ],\n"
    printf "  \"classify\": [\n"
    for (i = 1; i <= cm; i++) printf "%s%s\n", cline[i], (i < cm ? "," : "")
    printf "  ],\n"
    printf "  \"classify_100k_over_1k\": %.2f,\n", flat
    printf "  \"batch_over_scalar_pps\": %.2f,\n", speedup
    printf "  \"gates\": {\"batch_over_scalar_2x\": \"%s\", \"classify_flat_100k_le_2x_1k\": \"%s\"}\n", batchgate, flatgate
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"

if grep -q '"FAIL"' "$out"; then
    echo "bench_filter: gate FAILED:" >&2
    grep '"gates"' "$out" >&2
    exit 1
fi
grep '"gates"' "$out"
