#!/bin/sh
# Documentation presence gate (make docs-check; enforced in CI).
#
# Fails when:
#   - any internal package is missing a "// Package <name>" comment;
#   - any of the load-bearing packages (trie, classify, engine,
#     engine/module, filter, pipeline, enclave, lb, telemetry, faults) is
#     missing its dedicated doc.go — the file that states
#     the package's role, concurrency contract, and invariants;
#   - a required docs/ file is gone, or README stopped linking it.
#
# This keeps the documentation layer from silently rotting: a PR that adds
# an internal package without saying what it is, or deletes a contract
# doc, fails the build.
set -e

fail=0

for dir in internal/*/; do
    p="$(basename "$dir")"
    if ! grep -qr "^// Package $p " "$dir" --include='*.go' 2>/dev/null &&
       ! grep -qr "^// Package $p$" "$dir" --include='*.go' 2>/dev/null; then
        echo "docs-check: internal/$p has no package comment (\"// Package $p ...\")" >&2
        fail=1
    fi
done

for p in trie classify engine engine/module filter pipeline enclave lb telemetry faults; do
    if [ ! -f "internal/$p/doc.go" ]; then
        echo "docs-check: internal/$p/doc.go missing (role + concurrency contract + invariants)" >&2
        fail=1
    elif ! grep -q "Concurrency contract" "internal/$p/doc.go" ||
         ! grep -q "Invariants" "internal/$p/doc.go"; then
        echo "docs-check: internal/$p/doc.go must document the concurrency contract and invariants" >&2
        fail=1
    fi
done

for f in docs/ARCHITECTURE.md docs/BENCHMARKS.md docs/OBSERVABILITY.md; do
    if [ ! -f "$f" ]; then
        echo "docs-check: $f missing" >&2
        fail=1
    elif ! grep -q "$f" README.md; then
        echo "docs-check: README.md does not link $f" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs-check: FAILED" >&2
    exit 1
fi
echo "docs-check: ok"
