#!/bin/sh
# Runs the engine shard-scaling benchmarks (BenchmarkEngineShards{1,2,4,8})
# and writes the results as JSON so the performance trajectory accumulates
# across PRs. Usage:
#
#   scripts/bench_engine.sh [output.json]     # default BENCH_engine.json
#   BENCHTIME=500000x scripts/bench_engine.sh # longer runs
#
# The JSON records, per shard count, the wall-clock ns per injected packet,
# the observed aggregate packet rate, and the aggregate modeled fleet
# capacity (per-shard SGX-cost-model virtual time converted to a line-rate-
# capped packet rate and summed — the paper's Figure 4 linear-scaling
# quantity, which is host-core-count independent).
set -e

out="${1:-BENCH_engine.json}"
benchtime="${BENCHTIME:-100000x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkEngineShards' -benchtime "$benchtime" -count 1 . | tee "$tmp"

awk -v benchtime="$benchtime" '
/^BenchmarkEngineShards/ {
    name = $1
    sub(/-[0-9]+$/, "", name)                 # strip the -GOMAXPROCS suffix
    shards = name
    sub(/^BenchmarkEngineShards/, "", shards)
    ns = ""; agg = ""; wall = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "aggregate-modeled-Mpps") agg = $i
        if ($(i+1) == "wall-Mpps") wall = $i
    }
    n++
    line[n] = sprintf("    {\"shards\": %s, \"ns_per_op\": %s, \"aggregate_modeled_mpps\": %s, \"wall_mpps\": %s}", shards, ns, agg, wall)
    aggv[shards] = agg
}
END {
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkEngineShards\",\n"
    printf "  \"frame_bytes\": 64,\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", line[i], (i < n ? "," : "")
    scaling = (aggv[1] > 0 && aggv[8] > 0) ? aggv[8] / aggv[1] : 0
    printf "  ],\n"
    printf "  \"aggregate_scaling_8_over_1\": %.2f\n", scaling
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"
