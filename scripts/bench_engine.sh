#!/bin/sh
# Runs the engine wall-clock scaling benchmarks
# (BenchmarkEngineWallScaling{1,2,4,8}) plus the injection-path comparison
# (BenchmarkEngineInject{Scalar,Batch}) and writes the results as JSON so
# the performance trajectory accumulates across PRs. Usage:
#
#   scripts/bench_engine.sh [output.json]     # default BENCH_engine.json
#   BENCHTIME=500000x scripts/bench_engine.sh # longer runs
#
# Two quantities are recorded per shard count and must not be confused:
#
#   wall_mpps               what this machine actually sustained end to end
#                           (multi-producer batched injection + real worker
#                           drain), the ROADMAP's "fast as the hardware
#                           allows" number;
#   aggregate_modeled_mpps  the paper's Figure 4 quantity: per-shard SGX
#                           cost-model virtual time converted to a
#                           line-rate-capped rate and summed — linear in
#                           shard count on any host, by construction.
#
# Gates (the script exits non-zero when one fails):
#
#   inject_batch_2x   InjectBatch wall Mpps must be >= 2x scalar Inject on
#                     the multi-producer train workload. Enforced always:
#                     the batched reservation is a serial-cost reduction,
#                     so it holds even on one core.
#   wall_4_gt_1       wall Mpps at 4 shards must exceed 1 shard. Enforced
#                     when the host reports >= 4 CPUs (hosted CI runners
#                     do): the 4-shard case runs 4 workers + 4 producers,
#                     and below 4 cores the scheduler timeslices them
#                     against each other, so a win over the 2-goroutine
#                     1-shard case is not physically guaranteed and the
#                     gate would flag scheduling luck, not regressions.
#                     On smaller hosts it is recorded as skipped rather
#                     than lying in either direction.
set -e

out="${1:-BENCH_engine.json}"
benchtime="${BENCHTIME:-100000x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkEngine(WallScaling|Inject)' \
    -benchtime "$benchtime" -count 1 . | tee "$tmp"

awk -v benchtime="$benchtime" '
/^BenchmarkEngineWallScaling/ {
    name = $1
    sub(/-[0-9]+$/, "", name)                 # strip the -GOMAXPROCS suffix
    shards = name
    sub(/^BenchmarkEngineWallScaling/, "", shards)
    ns = ""; agg = ""; wall = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "aggregate-modeled-Mpps") agg = $i
        if ($(i+1) == "wall-Mpps") wall = $i
        if ($(i+1) == "host-cpus") cpus = $i
    }
    n++
    line[n] = sprintf("    {\"shards\": %s, \"ns_per_op\": %s, \"wall_mpps\": %s, \"aggregate_modeled_mpps\": %s}", shards, ns, wall, agg)
    wallv[shards] = wall
    aggv[shards] = agg
}
/^BenchmarkEngineInjectScalar/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "wall-Mpps") scalar = $i
}
/^BenchmarkEngineInjectBatch/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "wall-Mpps") batch = $i
}
END {
    wallscale = (wallv[1] > 0 && wallv[4] > 0) ? wallv[4] / wallv[1] : 0
    aggscale = (aggv[1] > 0 && aggv[8] > 0) ? aggv[8] / aggv[1] : 0
    injratio = (scalar > 0 && batch > 0) ? batch / scalar : 0

    injgate = (injratio >= 2.0) ? "pass" : "FAIL"
    if (cpus + 0 >= 4)
        wallgate = (wallscale > 1.0) ? "pass" : "FAIL"
    else
        wallgate = sprintf("skipped (host_cpus=%d; enforced when >= 4)", cpus)

    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkEngineWallScaling\",\n"
    printf "  \"frame_bytes\": 64,\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"host_cpus\": %d,\n", cpus
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", line[i], (i < n ? "," : "")
    printf "  ],\n"
    printf "  \"inject\": {\"scalar_mpps\": %s, \"batch_mpps\": %s, \"batch_over_scalar\": %.2f},\n", scalar, batch, injratio
    printf "  \"wall_scaling_4_over_1\": %.2f,\n", wallscale
    printf "  \"aggregate_scaling_8_over_1\": %.2f,\n", aggscale
    printf "  \"gates\": {\"inject_batch_2x\": \"%s\", \"wall_4_gt_1\": \"%s\"}\n", injgate, wallgate
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"

if grep -q '"FAIL"' "$out"; then
    echo "bench_engine: gate FAILED:" >&2
    grep '"gates"' "$out" >&2
    exit 1
fi
