#!/bin/sh
# Runs the engine wall-clock scaling benchmarks
# (BenchmarkEngineWallScaling{1,2,4,8}), the injection-path comparison
# (BenchmarkEngineInject{Scalar,Batch}), the multi-victim namespace
# scaling (BenchmarkEngineMultiVictim{1,4,16}) and the rule-reinstall
# latency sweep — full rebuild (BenchmarkReconfigure{1k,10k,25k}) against
# incremental delta reinstall (BenchmarkReconfigureDelta{1k,10k,25k}, a
# ≤1%-of-rules changeset through trie snapshot diffing) — and writes the
# results as JSON so the performance trajectory accumulates across PRs.
# Usage:
#
#   scripts/bench_engine.sh [output.json]     # default BENCH_engine.json
#   BENCHTIME=500000x scripts/bench_engine.sh # longer runs
#   ONLY=multivictim scripts/bench_engine.sh  # just the namespace gate
#                                             # (make bench-multivictim)
#   ONLY=telemetry scripts/bench_engine.sh    # just the telemetry gate
#                                             # (make bench-telemetry)
#   ONLY=isolation scripts/bench_engine.sh    # just the overload-isolation
#                                             # gate (make bench-isolation)
#   ONLY=pipeline scripts/bench_engine.sh     # just the module-pipeline
#                                             # gate (make bench-pipeline)
#
# Two quantities are recorded per shard count and must not be confused:
#
#   wall_mpps               what this machine actually sustained end to end
#                           (multi-producer batched injection + real worker
#                           drain), the ROADMAP's "fast as the hardware
#                           allows" number;
#   aggregate_modeled_mpps  the paper's Figure 4 quantity: per-shard SGX
#                           cost-model virtual time converted to a
#                           line-rate-capped rate and summed — linear in
#                           shard count on any host, by construction.
#
# Gates (the script exits non-zero when one fails):
#
#   inject_batch_2x     InjectBatch wall Mpps must be >= 2x scalar Inject
#                       on the multi-producer train workload. Enforced
#                       always: the batched reservation is a serial-cost
#                       reduction, so it holds even on one core.
#   wall_4_gt_1         wall Mpps at 4 shards must exceed 1 shard. Enforced
#                       when the host reports >= 4 CPUs (hosted CI runners
#                       do); recorded as skipped on smaller hosts, where a
#                       win would be scheduling luck, not engineering.
#   multivictim_4_ge_07 wall Mpps serving 4 victim namespaces must stay
#                       >= 0.7x the single-namespace figure on an
#                       otherwise identical workload (2 shards, 2
#                       producers). Enforced always: namespace dispatch is
#                       a per-burst view load plus 2-byte compares, so if
#                       this gate trips, dispatch has leaked onto the
#                       per-packet path.
#   telemetry_overhead_ge_097
#                       wall Mpps with the observability plane attached at
#                       its production defaults (1-in-64 stage sampling,
#                       1-in-4096 packet traces, journal on) must stay
#                       >= 0.97x the telemetry-off figure on the same
#                       2-shard workload. Enforced always: per packet,
#                       telemetry costs a handful of nil checks, one local
#                       counter increment per burst, and one atomic load
#                       per burst — none of which depends on host
#                       parallelism. The 0.03 allowance is measurement
#                       noise, not a budget to spend. Each side runs
#                       TELEMETRY_COUNT times (default 3) and the gate
#                       compares best-of: on a timeslicing 1-CPU host a
#                       single wall sample swings +-15% on scheduling
#                       luck, which would drown a 3% gate; peak-vs-peak
#                       isolates the overhead from the noise.
#   quiet_victim_ge_09  with one flooded-but-admission-capped victim on
#                       the engine (BenchmarkEngineIsolationAttacked), the
#                       three quiet victims' wall pps must stay >= 0.9x
#                       their no-attacker figure (…Solo). Enforced always:
#                       both phases run one producer on the same quiet
#                       workload, so the ratio prices what the attacker's
#                       clipped flood costs the neighbors — marker writes
#                       — not host parallelism. If this gate trips, the
#                       admission gate is leaking flood work onto the
#                       shared rings or filters.
#   pipeline_overhead_ge_097
#                       wall Mpps with the worker inner loop decomposed
#                       into the classify→sketch→charge module chain must
#                       stay >= 0.97x the legacy fused loop on the same
#                       2-shard workload. Enforced always: the chain's
#                       extra per-burst bill is a few interface dispatches
#                       and the shared BurstCtx bookkeeping — none of it
#                       per-packet and none of it host-dependent. Like the
#                       telemetry gate, each side runs PIPELINE_COUNT
#                       times (default 3) and the gate compares best-of to
#                       keep 1-CPU scheduling noise out of a 3% margin.
#   delta_5x_10k        a ≤1%-of-rules delta reinstall at 10k rules must
#   delta_5x_25k        be >= 5x faster than the full rebuild at the same
#                       size (ditto at 25k). Enforced always: the speedup
#                       is a serial work reduction (path copies instead of
#                       re-inserting every rule), host-independent. This
#                       is the ROADMAP's "snapshot-level trie diffing"
#                       number-to-beat, gated so it can never regress to a
#                       hidden full rebuild.
set -e

out="${1:-BENCH_engine.json}"
benchtime="${BENCHTIME:-100000x}"
only="${ONLY:-}"
host_cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
go_version="$(go env GOVERSION)"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

if [ "$only" = "multivictim" ]; then
    pattern='BenchmarkEngineMultiVictim'
elif [ "$only" = "isolation" ]; then
    pattern='BenchmarkEngineIsolation'
else
    pattern='BenchmarkEngine(WallScaling|Inject|MultiVictim|Isolation)'
fi

: > "$tmp"
if [ "$only" != "telemetry" ] && [ "$only" != "pipeline" ]; then
    go test -run '^$' -bench "$pattern" \
        -benchtime "$benchtime" -count 1 . | tee -a "$tmp"
fi

# The telemetry overhead pair runs with -count so the gate can compare
# best-of rather than one noisy wall sample per side (see the gate note
# in the header).
if [ -z "$only" ] || [ "$only" = "telemetry" ]; then
    go test -run '^$' -bench 'BenchmarkEngineTelemetry' \
        -benchtime "$benchtime" -count "${TELEMETRY_COUNT:-3}" . | tee -a "$tmp"
fi

# The module-pipeline pair (legacy fused loop vs decomposed chain) gets
# the same best-of treatment as telemetry, for the same reason.
if [ -z "$only" ] || [ "$only" = "pipeline" ]; then
    go test -run '^$' -bench 'BenchmarkEngineModulePipeline' \
        -benchtime "$benchtime" -count "${PIPELINE_COUNT:-3}" . | tee -a "$tmp"
fi

# The Reconfigure sweeps get their own iteration budgets: a 25k-rule
# reinstall costs tens of milliseconds, so the packet-scale benchtime
# above would run it for an hour. A handful of iterations is plenty for a
# whole-table-rebuild measurement. The DELTA sweep needs more: Diff's
# slack compaction first fires after ~20-30 consecutive 1% deltas, and the
# filter's priority-domain densify rebuild after ~100 (churn totalling
# (densifyFactor-1)x the rule set), so the gated mean must span at least
# one full cycle of BOTH amortized costs to price steady-state churn
# honestly rather than the best case — 120 iterations covers it at every
# rule count.
if [ -z "$only" ]; then
    go test -run '^$' -bench 'BenchmarkReconfigure(1k|10k|25k)$' \
        -benchtime "${RECONF_BENCHTIME:-10x}" -count 1 . | tee -a "$tmp"
    go test -run '^$' -bench 'BenchmarkReconfigureDelta' \
        -benchtime "${DELTA_BENCHTIME:-120x}" -count 1 . | tee -a "$tmp"
fi

awk -v benchtime="$benchtime" -v only="$only" \
    -v shcpus="$host_cpus" -v gover="$go_version" '
/^BenchmarkEngineWallScaling/ {
    name = $1
    sub(/-[0-9]+$/, "", name)                 # strip the -GOMAXPROCS suffix
    shards = name
    sub(/^BenchmarkEngineWallScaling/, "", shards)
    ns = ""; agg = ""; wall = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "aggregate-modeled-Mpps") agg = $i
        if ($(i+1) == "wall-Mpps") wall = $i
        if ($(i+1) == "host-cpus") cpus = $i
    }
    n++
    line[n] = sprintf("    {\"shards\": %s, \"ns_per_op\": %s, \"wall_mpps\": %s, \"aggregate_modeled_mpps\": %s}", shards, ns, wall, agg)
    wallv[shards] = wall
    aggv[shards] = agg
}
/^BenchmarkEngineMultiVictim/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    vict = name
    sub(/^BenchmarkEngineMultiVictim/, "", vict)
    ns = ""; wall = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "wall-Mpps") wall = $i
    }
    mvn++
    mvline[mvn] = sprintf("    {\"victims\": %s, \"ns_per_op\": %s, \"wall_mpps\": %s}", vict, ns, wall)
    mv[vict] = wall
}
/^BenchmarkReconfigureDelta/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    rk = name
    sub(/^BenchmarkReconfigureDelta/, "", rk)
    ns = ""; rules = ""; drules = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "rules") rules = $i
        if ($(i+1) == "delta-rules") drules = $i
    }
    dn++
    dline[dn] = sprintf("    {\"rules\": %.0f, \"delta_rules\": %.0f, \"ns_per_reconfigure\": %s, \"ms_per_reconfigure\": %.3f}", rules, drules, ns, ns / 1e6)
    deltans[rk] = ns
    next
}
/^BenchmarkReconfigure/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    rk = name
    sub(/^BenchmarkReconfigure/, "", rk)
    ns = ""; rules = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "rules") rules = $i
    }
    rn++
    rline[rn] = sprintf("    {\"rules\": %.0f, \"ns_per_reconfigure\": %s, \"ms_per_reconfigure\": %.3f}", rules, ns, ns / 1e6)
    fullns[rk] = ns
}
/^BenchmarkEngineIsolationSolo/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "quiet-wall-Mpps") isosolo = $i + 0
    next
}
/^BenchmarkEngineIsolationAttacked/ {
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "quiet-wall-Mpps") isoatk = $i + 0
        if ($(i+1) == "attacker-throttled") isothr = $i + 0
    }
    next
}
/^BenchmarkEngineModulePipelineLegacy/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "wall-Mpps" && $i + 0 > pipelegacy) pipelegacy = $i + 0
    next
}
/^BenchmarkEngineModulePipelineChain/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "wall-Mpps" && $i + 0 > pipechain) pipechain = $i + 0
    next
}
/^BenchmarkEngineTelemetryOff/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "wall-Mpps" && $i + 0 > teloff) teloff = $i + 0
}
/^BenchmarkEngineTelemetryOn/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "wall-Mpps" && $i + 0 > telon) telon = $i + 0
}
/^BenchmarkEngineInjectScalar/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "wall-Mpps") scalar = $i
}
/^BenchmarkEngineInjectBatch/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "wall-Mpps") batch = $i
}
END {
    mvratio = (mv[1] > 0 && mv[4] > 0) ? mv[4] / mv[1] : 0
    mvgate = (mvratio >= 0.7) ? "pass" : "FAIL"
    telratio = (teloff > 0 && telon > 0) ? telon / teloff : 0
    telgate = (telratio >= 0.97) ? "pass" : "FAIL"
    isoratio = (isosolo > 0 && isoatk > 0) ? isoatk / isosolo : 0
    isogate = (isoratio >= 0.9) ? "pass" : "FAIL"
    piperatio = (pipelegacy > 0 && pipechain > 0) ? pipechain / pipelegacy : 0
    pipegate = (piperatio >= 0.97) ? "pass" : "FAIL"

    if (only == "pipeline") {
        printf "{\n"
        printf "  \"benchmark\": \"BenchmarkEngineModulePipeline\",\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"host_cpus\": %d,\n", shcpus
        printf "  \"go_version\": \"%s\",\n", gover
        printf "  \"pipeline\": {\"legacy_mpps\": %.3f, \"chain_mpps\": %.3f, \"chain_over_legacy\": %.3f},\n", pipelegacy, pipechain, piperatio
        printf "  \"gates\": {\"pipeline_overhead_ge_097\": \"%s\"}\n", pipegate
        printf "}\n"
        exit
    }

    if (only == "isolation") {
        printf "{\n"
        printf "  \"benchmark\": \"BenchmarkEngineIsolation\",\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"host_cpus\": %d,\n", shcpus
        printf "  \"go_version\": \"%s\",\n", gover
        printf "  \"isolation\": {\"solo_quiet_mpps\": %.3f, \"attacked_quiet_mpps\": %.3f, \"attacked_over_solo\": %.3f, \"attacker_throttled\": %.0f},\n", isosolo, isoatk, isoratio, isothr
        printf "  \"gates\": {\"quiet_victim_ge_09\": \"%s\"}\n", isogate
        printf "}\n"
        exit
    }

    if (only == "telemetry") {
        printf "{\n"
        printf "  \"benchmark\": \"BenchmarkEngineTelemetry\",\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"host_cpus\": %d,\n", shcpus
        printf "  \"go_version\": \"%s\",\n", gover
        printf "  \"telemetry\": {\"off_mpps\": %s, \"on_mpps\": %s, \"on_over_off\": %.3f},\n", teloff, telon, telratio
        printf "  \"gates\": {\"telemetry_overhead_ge_097\": \"%s\"}\n", telgate
        printf "}\n"
        exit
    }

    if (only == "multivictim") {
        printf "{\n"
        printf "  \"benchmark\": \"BenchmarkEngineMultiVictim\",\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"host_cpus\": %d,\n", shcpus
        printf "  \"go_version\": \"%s\",\n", gover
        printf "  \"multivictim\": [\n"
        for (i = 1; i <= mvn; i++) printf "%s%s\n", mvline[i], (i < mvn ? "," : "")
        printf "  ],\n"
        printf "  \"multivictim_4_over_1\": %.2f,\n", mvratio
        printf "  \"gates\": {\"multivictim_4_ge_07\": \"%s\"}\n", mvgate
        printf "}\n"
        exit
    }

    wallscale = (wallv[1] > 0 && wallv[4] > 0) ? wallv[4] / wallv[1] : 0
    aggscale = (aggv[1] > 0 && aggv[8] > 0) ? aggv[8] / aggv[1] : 0
    injratio = (scalar > 0 && batch > 0) ? batch / scalar : 0

    injgate = (injratio >= 2.0) ? "pass" : "FAIL"
    if (cpus + 0 >= 4)
        wallgate = (wallscale > 1.0) ? "pass" : "FAIL"
    else
        wallgate = sprintf("skipped (host_cpus=%d; enforced when >= 4)", cpus)

    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkEngineWallScaling\",\n"
    printf "  \"frame_bytes\": 64,\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"host_cpus\": %d,\n", cpus
    printf "  \"go_version\": \"%s\",\n", gover
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", line[i], (i < n ? "," : "")
    printf "  ],\n"
    printf "  \"multivictim\": [\n"
    for (i = 1; i <= mvn; i++) printf "%s%s\n", mvline[i], (i < mvn ? "," : "")
    printf "  ],\n"
    printf "  \"reconfigure\": [\n"
    for (i = 1; i <= rn; i++) printf "%s%s\n", rline[i], (i < rn ? "," : "")
    printf "  ],\n"
    printf "  \"reconfigure_delta\": [\n"
    for (i = 1; i <= dn; i++) printf "%s%s\n", dline[i], (i < dn ? "," : "")
    printf "  ],\n"
    d10 = (deltans["10k"] > 0) ? fullns["10k"] / deltans["10k"] : 0
    d25 = (deltans["25k"] > 0) ? fullns["25k"] / deltans["25k"] : 0
    d10gate = (d10 >= 5.0) ? "pass" : "FAIL"
    d25gate = (d25 >= 5.0) ? "pass" : "FAIL"
    printf "  \"delta_speedup\": {\"10k\": %.1f, \"25k\": %.1f},\n", d10, d25
    printf "  \"inject\": {\"scalar_mpps\": %s, \"batch_mpps\": %s, \"batch_over_scalar\": %.2f},\n", scalar, batch, injratio
    printf "  \"telemetry\": {\"off_mpps\": %s, \"on_mpps\": %s, \"on_over_off\": %.3f},\n", teloff, telon, telratio
    printf "  \"pipeline\": {\"legacy_mpps\": %.3f, \"chain_mpps\": %.3f, \"chain_over_legacy\": %.3f},\n", pipelegacy, pipechain, piperatio
    printf "  \"isolation\": {\"solo_quiet_mpps\": %.3f, \"attacked_quiet_mpps\": %.3f, \"attacked_over_solo\": %.3f, \"attacker_throttled\": %.0f},\n", isosolo, isoatk, isoratio, isothr
    printf "  \"wall_scaling_4_over_1\": %.2f,\n", wallscale
    printf "  \"multivictim_4_over_1\": %.2f,\n", mvratio
    printf "  \"aggregate_scaling_8_over_1\": %.2f,\n", aggscale
    printf "  \"gates\": {\"inject_batch_2x\": \"%s\", \"wall_4_gt_1\": \"%s\", \"multivictim_4_ge_07\": \"%s\", \"telemetry_overhead_ge_097\": \"%s\", \"pipeline_overhead_ge_097\": \"%s\", \"quiet_victim_ge_09\": \"%s\", \"delta_5x_10k\": \"%s\", \"delta_5x_25k\": \"%s\"}\n", injgate, wallgate, mvgate, telgate, pipegate, isogate, d10gate, d25gate
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"

if grep -q '"FAIL"' "$out"; then
    echo "bench_engine: gate FAILED:" >&2
    grep '"gates"' "$out" >&2
    exit 1
fi
