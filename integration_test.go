package vif_test

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"github.com/innetworkfiltering/vif/internal/bypass"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/netsim"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/pipeline"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// TestIntegrationPipelineToVerifier runs the real concurrent data plane —
// synthesized frames through RX/filter/TX stages over lock-free rings —
// with a victim-side verifier attached to the TX sink, then closes the
// loop with the enclave's authenticated log: an honest pipeline must
// produce a clean audit, byte for byte.
func TestIntegrationPipelineToVerifier(t *testing.T) {
	set, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from any to 192.0.2.0/24 dport 53"),
		rules.MustParse("drop 50% tcp from any to 192.0.2.0/24 dport 80"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := enclave.New(enclave.CodeIdentity{Name: "vif-filter", BinarySize: 1 << 20},
		enclave.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	f, err := filter.New(e, set, filter.Config{})
	if err != nil {
		t.Fatal(err)
	}

	victim := bypass.NewVictimVerifier()
	var delivered atomic.Uint64
	sink := func(d packet.Descriptor, frame []byte) {
		tuple, err := packet.Parse(frame)
		if err != nil {
			t.Errorf("sink frame unparsable: %v", err)
			return
		}
		victim.Observe(tuple)
		delivered.Add(1)
	}
	p, err := pipeline.New(f, sink, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	// pktgen role: DNS floods + HTTP flows + clean HTTPS, interleaved.
	rng := rand.New(rand.NewSource(1))
	gen := netsim.NewFlowGen(2, packet.MustParseIP("192.0.2.0"), 24)
	frame := make([]byte, 256)
	const total = 20000
	for i := 0; i < total; i++ {
		tuple := gen.Next()
		switch i % 3 {
		case 0: // amplification flood: must all die
			tuple.SrcPort, tuple.DstPort, tuple.Proto = 53, 53, packet.ProtoUDP
		case 1: // HTTP: connection-preserving 50% drop
			tuple.DstPort, tuple.Proto = 80, packet.ProtoTCP
		default: // HTTPS: untouched
			tuple.DstPort, tuple.Proto = 443, packet.ProtoTCP
		}
		_ = rng
		packet.SynthesizeInto(frame, tuple)
		for !p.Inject(frame) {
		}
	}
	p.WaitDrained()

	c := p.Counters()
	if c.RxPackets != total {
		t.Fatalf("RxPackets = %d", c.RxPackets)
	}
	// All DNS dropped, ~half of HTTP dropped, HTTPS intact.
	lo, hi := uint64(total/3+total/6-total/20), uint64(total/3+total/6+total/20)
	if c.Filtered < lo || c.Filtered > hi {
		t.Fatalf("Filtered = %d, want in [%d,%d]", c.Filtered, lo, hi)
	}
	if delivered.Load() != c.TxPackets {
		t.Fatalf("sink saw %d, TX counted %d", delivered.Load(), c.TxPackets)
	}

	// Close the verification loop over the real concurrent run.
	snap, err := f.Snapshot(filter.LogOutgoing, 1)
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := victim.Check(e.MACKey(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Clean {
		t.Fatalf("honest concurrent pipeline flagged: %+v", verdict)
	}
}

// TestIntegrationPipelineHostDropsCaught repeats the run with a lossy
// "downstream" (the sink drops every 8th packet before the victim sees
// it): the audit must implicate drop-after-filtering.
func TestIntegrationPipelineHostDropsCaught(t *testing.T) {
	set, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from any to 192.0.2.0/24 dport 53"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := enclave.New(enclave.CodeIdentity{Name: "vif-filter", BinarySize: 1 << 20},
		enclave.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	f, err := filter.New(e, set, filter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	victim := bypass.NewVictimVerifier()
	var n atomic.Uint64
	sink := func(d packet.Descriptor, frame []byte) {
		if n.Add(1)%8 == 0 {
			return // the malicious host discards it post-filter
		}
		if tuple, err := packet.Parse(frame); err == nil {
			victim.Observe(tuple)
		}
	}
	p, err := pipeline.New(f, sink, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	gen := netsim.NewFlowGen(3, packet.MustParseIP("192.0.2.0"), 24)
	frame := make([]byte, 128)
	for i := 0; i < 8000; i++ {
		tuple := gen.Next()
		tuple.DstPort, tuple.Proto = 443, packet.ProtoTCP
		packet.SynthesizeInto(frame, tuple)
		for !p.Inject(frame) {
		}
	}
	p.WaitDrained()

	snap, err := f.Snapshot(filter.LogOutgoing, 1)
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := victim.Check(e.MACKey(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Clean {
		t.Fatal("12.5% post-filter drop not detected over the real pipeline")
	}
	if verdict.DropAfterFilter < 500 {
		t.Fatalf("drop estimate %d too low", verdict.DropAfterFilter)
	}
}
