package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/innetworkfiltering/vif/internal/filter"
)

func TestParseRulesFile(t *testing.T) {
	set, err := parseRulesFile(`
# amplification defense
default drop
drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53
allow tcp from any to 192.0.2.0/24 dport 443
`)
	if err != nil {
		t.Fatal(err)
	}
	if set.DefaultAllow {
		t.Error("default drop not honored")
	}
	if set.Len() != 2 {
		t.Errorf("rules = %d, want 2", set.Len())
	}
}

func TestParseRulesFileErrors(t *testing.T) {
	tests := []string{
		"default maybe",
		"drop nonsense from any to any",
		"", // no rules at all
	}
	for _, give := range tests {
		if _, err := parseRulesFile(give); err == nil {
			t.Errorf("parseRulesFile(%q): want error", give)
		}
	}
}

func TestParseMode(t *testing.T) {
	tests := []struct {
		give string
		want filter.CopyMode
		ok   bool
	}{
		{"native", filter.CopyModeNative, true},
		{"full-copy", filter.CopyModeFull, true},
		{"near-zero-copy", filter.CopyModeNearZero, true},
		{"turbo", 0, false},
	}
	for _, tt := range tests {
		got, err := parseMode(tt.give)
		if (err == nil) != tt.ok || got != tt.want {
			t.Errorf("parseMode(%q) = %v, %v", tt.give, got, err)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rulesPath := filepath.Join(dir, "rules.txt")
	err := os.WriteFile(rulesPath, []byte(
		"default allow\ndrop udp from any to 192.0.2.0/24 dport 53\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	start := time.Now()
	if err := run([]string{
		"-rules", rulesPath, "-duration", "200ms", "-size", "128",
	}, &out); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("run took far longer than the requested duration")
	}
	text := out.String()
	for _, want := range []string{"measurement", "verdicts:", "incoming log", "outgoing log"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestShapeRules(t *testing.T) {
	for _, shape := range []string{"prefix", "5tuple", "reflection"} {
		set, err := shapeRules(shape, 300, 1)
		if err != nil {
			t.Fatalf("shapeRules(%q): %v", shape, err)
		}
		if set.Len() != 300 {
			t.Errorf("shapeRules(%q) = %d rules, want 300", shape, set.Len())
		}
	}
	if _, err := shapeRules("bogus", 10, 1); err == nil {
		t.Error("bogus shape accepted")
	}
	if _, err := shapeRules("prefix", 0, 1); err == nil {
		t.Error("zero rule count accepted")
	}
}

// TestShapeRulesDistinctGeometry pins what each shape is for: reflection
// gives every rule its own dst block but shares src prefixes (candidate
// pile-up on trie nodes), 5tuple constrains every attribute.
func TestShapeRulesDistinctGeometry(t *testing.T) {
	refl, err := shapeRules("reflection", 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	dsts := make(map[uint32]bool)
	srcs := make(map[uint32]bool)
	for _, r := range refl.Rules {
		dsts[r.Dst.Addr] = true
		srcs[r.Src.Addr] = true
		if !r.DstPort.IsAny() {
			t.Fatalf("reflection rule %v constrains dport", r)
		}
	}
	if len(dsts) != 512 {
		t.Errorf("reflection dst blocks = %d, want 512 unique", len(dsts))
	}
	if len(srcs) != 256 {
		t.Errorf("reflection src vocabulary = %d, want 256", len(srcs))
	}
	ft, err := shapeRules("5tuple", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ft.Rules {
		if r.Src.Len != 32 || r.Dst.Len != 32 || r.SrcPort.IsAny() || r.DstPort.IsAny() {
			t.Fatalf("5tuple rule %v leaves an attribute unconstrained", r)
		}
	}
}

func TestRunRuleShapeClassic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-rule-shape", "reflection", "-rule-count", "500", "-duration", "150ms",
	}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"rules: 500, default allow",
		"rule-shape reflection: 500 rules; verdicts: allowed ",
		"; classifier: index ",
		" B, sets ",
		" B, build ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("shaped classic output missing %q:\n%s", want, text)
		}
	}
}

func TestRunRuleShapeEngine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-rule-shape", "prefix", "-rule-count", "200",
		"-shards", "2", "-producers", "1", "-duration", "150ms",
	}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "rule-shape prefix: 200 rules; verdicts: allowed ") {
		t.Errorf("shaped engine output missing per-shape verdict line:\n%s", text)
	}
	if !strings.Contains(text, "; classifier: index ") {
		t.Errorf("shaped engine output missing classifier footprint clause:\n%s", text)
	}
}

func TestRunRuleShapeRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rule-shape", "bogus"}, &out); err == nil {
		t.Fatal("bogus -rule-shape accepted")
	}
	if err := run([]string{"-rule-shape", "prefix", "-rule-count", "0"}, &out); err == nil {
		t.Fatal("-rule-count 0 accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "bogus"}, &out); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if err := run([]string{"-rules", "/nonexistent/rules.txt"}, &out); err == nil {
		t.Fatal("missing rules file accepted")
	}
	if err := run([]string{"-shards", "-1"}, &out); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if err := run([]string{"-shards", "2", "-producers", "0"}, &out); err == nil {
		t.Fatal("zero producers accepted")
	}
}

func TestRunEngineMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-shards", "2", "-producers", "2", "-duration", "150ms",
	}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"engine: 2 shards",
		"aggregate modeled fleet capacity",
		"shard 0:", "shard 1:",
		"epoch 1 shard 0:", "epoch 1 shard 1:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("engine output missing %q:\n%s", want, text)
		}
	}
}

func TestRunMultiVictimMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-shards", "2", "-producers", "2", "-victims", "3", "-duration", "150ms",
	}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"engine: 2 shards, 2 producers, 3 victim namespaces",
		"EPC budget:",
		"victim ns=0 10.1.0.0/16:",
		"victim ns=1 10.2.0.0/16:",
		"victim ns=2 10.3.0.0/16:",
		"epoch 1 shard 0:", "epoch 1 shard 1:",
		"ns drops 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("multi-victim output missing %q:\n%s", want, text)
		}
	}
}

func TestRunChurnMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-shards", "2", "-producers", "1", "-duration", "400ms",
		"-churn", "60ms", "-churn-rules", "16",
	}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "live delta reinstalls (+16/-16 rules each)") {
		t.Errorf("churn output missing reinstall summary:\n%s", text)
	}
	// Steady state: base rules + one live batch of 16 still installed.
	if !strings.Contains(text, "final rule count 18") {
		t.Errorf("churn output missing expected final rule count:\n%s", text)
	}
	if !strings.Contains(text, "; classifier: index ") || !strings.Contains(text, " B, last patch ") {
		t.Errorf("churn output missing classifier footprint/patch-time clause:\n%s", text)
	}
}

func TestRunChurnNeedsEngine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-churn", "50ms"}, &out); err == nil {
		t.Fatal("-churn without -shards accepted")
	}
}

func TestRunMultiVictimTombstones(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-shards", "2", "-producers", "1", "-victims", "2", "-duration", "150ms",
	}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"tombstones (detached victims' final counters",
		"tombstone ns=0:", "tombstone ns=1:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("multi-victim output missing %q:\n%s", want, text)
		}
	}
}

func TestRunOverloadMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-shards", "2", "-producers", "1", "-victims", "2", "-overload",
		"-attack-pps", "10000", "-duration", "200ms",
	}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"overload: 2 shards, 1 producers, 1 attacked + 2 quiet victims, attacked cap 10000 pps",
		"attacked ns=0 10.1.0.0/16: admitted",
		"(cap 10000 pps)",
		"quiet    ns=1 10.2.0.0/16: admitted",
		"quiet    ns=2 10.3.0.0/16: admitted",
		"(uncapped)",
		"throttled",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("overload output missing %q:\n%s", want, text)
		}
	}
	// The flood must actually be clipped: the attacked victim's SLO line
	// reports a non-zero throttle count while the quiet victims stay at
	// "throttled 0".
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "attacked ns=0") && strings.Contains(line, "throttled 0 (") {
			t.Errorf("attacked victim was never throttled:\n%s", text)
		}
		if strings.HasPrefix(line, "quiet") && !strings.Contains(line, "throttled 0 (") {
			t.Errorf("quiet victim throttled:\n%s", text)
		}
	}
}

func TestRunOverloadNeedsEngine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-overload"}, &out); err == nil {
		t.Fatal("-overload without -shards accepted")
	}
	if err := run([]string{"-overload", "-shards", "2", "-attack-pps", "0"}, &out); err == nil {
		t.Fatal("-attack-pps 0 accepted")
	}
}

func TestRunMultiVictimNeedsEngine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-victims", "2"}, &out); err == nil {
		t.Fatal("-victims without -shards accepted")
	}
	if err := run([]string{"-victims", "0"}, &out); err == nil {
		t.Fatal("-victims 0 accepted")
	}
}

// syncBuffer is an io.Writer safe to read while run() writes it from
// another goroutine (the telemetry tests scrape mid-run).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var servingRe = regexp.MustCompile(`telemetry: serving .* on (\S+)`)

// TestRunEngineModeTelemetry starts the engine with -metrics-addr and
// -stats-interval, scrapes /metrics and /events while traffic runs, and
// checks the periodic stats lines reuse the live snapshot path.
func TestRunEngineModeTelemetry(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-shards", "2", "-producers", "1", "-duration", "900ms",
			"-metrics-addr", "127.0.0.1:0", "-stats-interval", "100ms",
		}, &out)
	}()

	// Wait for the server address line, then scrape mid-run.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("telemetry address never printed:\n%s", out.String())
		}
		if m := servingRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		"vif_engine_shards 2",
		"vif_shard_processed_total",
		"# TYPE vif_stage_latency_ns histogram",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("mid-run /metrics missing %q:\n%s", want, metrics)
		}
	}
	if events := get("/events"); !strings.Contains(events, `"type":"engine_start"`) {
		t.Errorf("mid-run /events missing engine_start:\n%s", events)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "stats: engine{") {
		t.Errorf("-stats-interval printed no engine stats lines:\n%s", text)
	}
}

// TestRunClassicModeTelemetry covers the single-enclave pipeline shape:
// stats lines from the pipeline counters and a /metrics endpoint serving
// the vif_pipeline_* families.
func TestRunClassicModeTelemetry(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-duration", "600ms",
			"-metrics-addr", "127.0.0.1:0", "-stats-interval", "100ms",
		}, &out)
	}()
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("telemetry address never printed:\n%s", out.String())
		}
		if m := servingRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "vif_pipeline_rx_packets_total") {
		t.Errorf("classic /metrics missing pipeline counters:\n%s", b)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if text := out.String(); !strings.Contains(text, "stats: pipeline{") {
		t.Errorf("-stats-interval printed no pipeline stats lines:\n%s", text)
	}
}

// TestRunEngineCaptureTap: -capture 1/N hangs a sampled capture tap off
// every shard's burst chain. The printed totals must satisfy the tap's
// contract — captured is a subset of processed at exactly the configured
// stride (each worker-owned counter floors independently, so the fleet
// total is within one packet per shard of processed/N).
func TestRunEngineCaptureTap(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-shards", "2", "-producers", "1", "-duration", "150ms", "-capture", "1/16",
	}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	m := regexp.MustCompile(`capture: sampled (\d+) of (\d+) processed \(1/16 per shard\)`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no capture summary in output:\n%s", text)
	}
	captured, _ := strconv.ParseUint(m[1], 10, 64)
	processed, _ := strconv.ParseUint(m[2], 10, 64)
	if captured == 0 || processed == 0 {
		t.Fatalf("degenerate run: captured %d of %d", captured, processed)
	}
	if captured > processed {
		t.Fatalf("captured %d packets but only %d were processed — tap invented traffic", captured, processed)
	}
	want := processed / 16
	if diff := int64(captured) - int64(want); diff < -2 || diff > 2 {
		t.Fatalf("sampling stride off: captured %d, want ~%d (processed %d / 16)", captured, want, processed)
	}
	if !strings.Contains(text, "verdict=") {
		t.Errorf("capture detail lines carry no verdicts:\n%s", text)
	}
}

func TestCaptureFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-capture", "1/16"}, &out); err == nil {
		t.Error("-capture without -shards accepted")
	}
	for _, bad := range []string{"16", "2/3", "1/0", "1/-4", "x"} {
		if err := run([]string{"-shards", "2", "-capture", bad}, &out); err == nil {
			t.Errorf("-capture %q accepted", bad)
		}
	}
}
