// Command vif-filter runs a standalone VIF filter node: one simulated SGX
// enclave hosting the auditable filter, fed by synthetic attack traffic,
// reporting throughput, verdict counters, and authenticated log digests.
//
// It is the single-box demonstrator of the paper's §V testbed:
//
//	vif-filter -rules rules.txt -pps 2000000 -duration 5s
//	vif-filter -rules rules.txt -mode full-copy -size 64
//
// With -shards N it instead runs the live concurrent engine of §IV-B: N
// enclave shards behind MPSC rings, fed by -producers generator threads
// through a uniform load-balancer programme, with per-shard metrics, the
// aggregate modeled fleet capacity, and an end-of-run epoch rotation whose
// authenticated per-shard log digests are printed:
//
//	vif-filter -rules rules.txt -shards 4 -producers 2 -duration 2s
//
// The rules file uses the textual rule form, one per line, with an
// optional leading "default allow|drop" line:
//
//	default allow
//	drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53
//	drop 50% tcp from any to 192.0.2.0/24 dport 80
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/engine"
	"github.com/innetworkfiltering/vif/internal/engine/module"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/lb"
	"github.com/innetworkfiltering/vif/internal/netsim"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/pipeline"
	"github.com/innetworkfiltering/vif/internal/rules"
	"github.com/innetworkfiltering/vif/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vif-filter:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vif-filter", flag.ContinueOnError)
	var (
		rulesPath = fs.String("rules", "", "path to rules file (default: built-in demo rules)")
		ruleShape = fs.String("rule-shape", "", "synthesize the rule set in a named workload shape: "+shapeNames+" (overrides -rules)")
		ruleCount = fs.Int("rule-count", 1000, "rules to synthesize for -rule-shape")
		modeStr   = fs.String("mode", "near-zero-copy", "data path: native | full-copy | near-zero-copy")
		size      = fs.Int("size", 64, "frame size in bytes")
		duration  = fs.Duration("duration", 2*time.Second, "how long to generate traffic")
		seed      = fs.Int64("seed", 1, "traffic generator seed")
		shards    = fs.Int("shards", 0, "run the live sharded engine with this many enclaves (0: classic single-enclave pipeline)")
		producers = fs.Int("producers", 2, "engine mode: concurrent traffic-generator goroutines")
		victims   = fs.Int("victims", 1, "engine mode: serve this many victim namespaces (distinct rule sets, per-victim traffic mixes) through one shared engine")
		overload  = fs.Bool("overload", false, "engine mode: overload scenario — one flooded, admission-capped victim (-attack-pps) shares the engine with -victims quiet namespaces; prints per-victim admit/throttle/drop SLO lines")
		attackPps = fs.Float64("attack-pps", 50000, "overload mode: the attacked victim's admitted-rate cap in packets/s")
		churn     = fs.Duration("churn", 0, "engine mode: push a live rule delta (add/remove a batch) at this interval while traffic runs (0: off)")
		churnN    = fs.Int("churn-rules", 64, "engine mode: rules added (and, after the first delta, removed) per -churn reinstall")
		captureS  = fs.String("capture", "", "engine mode: pdump-style sampled capture tap on every shard's burst chain — \"1/N\" records one packet in N with its flow key and verdict (e.g. 1/64; empty: off)")
		metrics   = fs.String("metrics-addr", "", "serve /metrics (Prometheus text), /events, /traces and /debug/pprof on this address (e.g. :9090; empty: off)")
		statsIvl  = fs.Duration("stats-interval", 0, "print a periodic stats line from the live metrics snapshot at this interval (0: off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	oc := obsConfig{metricsAddr: *metrics, statsInterval: *statsIvl}
	captureEvery, err := parseCapture(*captureS)
	if err != nil {
		return err
	}

	var set *rules.Set
	if *ruleShape != "" {
		if *rulesPath != "" {
			fmt.Fprintln(out, "note: -rule-shape synthesizes the rule set; -rules is ignored")
		}
		set, err = shapeRules(*ruleShape, *ruleCount, *seed)
	} else {
		set, err = loadRules(*rulesPath)
	}
	if err != nil {
		return err
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		return err
	}
	if *shards < 0 || *producers < 1 || *victims < 1 {
		return fmt.Errorf("bad -shards %d / -producers %d / -victims %d", *shards, *producers, *victims)
	}
	if captureEvery > 0 && *shards == 0 {
		return fmt.Errorf("-capture needs the engine: pass -shards N")
	}
	if captureEvery > 0 && (*overload || *victims > 1) {
		fmt.Fprintln(out, "note: -capture applies to the single-victim engine mode; ignored here")
	}
	if *overload {
		if *shards == 0 {
			return fmt.Errorf("-overload needs the engine: pass -shards N")
		}
		if *attackPps <= 0 {
			return fmt.Errorf("bad -attack-pps %v", *attackPps)
		}
		if *rulesPath != "" || *ruleShape != "" {
			fmt.Fprintln(out, "note: -overload synthesizes one rule set per victim; -rules/-rule-shape are ignored")
		}
		if *churn > 0 {
			fmt.Fprintln(out, "note: -churn applies to the single-victim engine mode; ignored with -overload")
		}
		return runOverload(out, mode, *shards, *producers, *victims, *size, *duration, *seed, oc, *attackPps)
	}
	if *victims > 1 {
		if *shards == 0 {
			return fmt.Errorf("-victims %d needs the engine: pass -shards N", *victims)
		}
		if *rulesPath != "" || *ruleShape != "" {
			fmt.Fprintln(out, "note: -victims synthesizes one rule set per victim; -rules/-rule-shape are ignored")
		}
		if *churn > 0 {
			fmt.Fprintln(out, "note: -churn applies to the single-victim engine mode; ignored with -victims")
		}
		return runMultiVictim(out, mode, *shards, *producers, *victims, *size, *duration, *seed, oc)
	}
	if *churn > 0 && *shards == 0 {
		return fmt.Errorf("-churn needs the engine: pass -shards N")
	}
	if *shards > 0 {
		return runEngine(out, set, mode, *shards, *producers, *size, *duration, *seed, *churn, *churnN, oc, *ruleShape, captureEvery)
	}

	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "1.0.0", Config: *modeStr, BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		return err
	}
	f, err := filter.New(e, set, filter.Config{Mode: mode})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "enclave %d measurement %x\n", e.ID(), e.Measurement())
	fmt.Fprintf(out, "rules: %d, default %s, mode %s\n",
		set.Len(), defaultWord(set.DefaultAllow), mode)

	p, err := pipeline.New(f, nil, pipeline.Config{})
	if err != nil {
		return err
	}
	if err := p.Start(); err != nil {
		return err
	}
	defer p.Stop()

	// Observability for the classic single-enclave pipeline: the pipeline's
	// counters publish through the same collector/exposition machinery the
	// engine uses (no shard histograms here — no shards).
	if oc.metricsAddr != "" {
		tel := telemetry.New(telemetry.Config{})
		tel.Register(telemetry.CollectorFunc(p.Collect))
		closeTel, err := serveTelemetry(out, tel, oc.metricsAddr)
		if err != nil {
			return err
		}
		defer closeTel()
	}
	stopStats := startStats(out, oc.statsInterval, p.String)
	defer stopStats()

	gen := netsim.NewFlowGen(*seed, victimBase(set), 24)
	frame := make([]byte, *size)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	injected := 0
	for time.Now().Before(deadline) {
		for burst := 0; burst < 256; burst++ {
			packet.SynthesizeInto(frame, gen.Next())
			if p.Inject(frame) {
				injected++
			}
		}
	}
	p.WaitDrained()
	stopStats()
	elapsed := time.Since(start)

	c := p.Counters()
	st := f.Stats()
	pps := float64(c.RxPackets) / elapsed.Seconds()
	fmt.Fprintf(out, "\nwall-clock: %v, injected %d frames (%.2f Mpps, %.2f Gb/s at %dB)\n",
		elapsed.Round(time.Millisecond), injected, pps/1e6,
		pipeline.ThroughputBps(pps, *size)/1e9, *size)
	fmt.Fprintf(out, "verdicts: allowed %d, dropped %d (rule hits %d, hash evals %d, default %d)\n",
		st.Allowed, st.Dropped, st.RuleHits, st.Hashed, st.DefaultHits)
	if *ruleShape != "" {
		idxB, setB, build := f.ClassifierStats()
		fmt.Fprintf(out, "%s\n", shapeStatsLine(*ruleShape, set.Len(), st, idxB, setB, build))
	}
	fmt.Fprintf(out, "modeled enclave time: %.0f ns/pkt; EPC in use: %.1f MB\n",
		e.VirtualNs()/float64(st.Processed), float64(e.MemoryUsed())/1e6)

	for _, kind := range []filter.LogKind{filter.LogIncoming, filter.LogOutgoing} {
		snap, err := f.Snapshot(kind, 1)
		if err != nil {
			return err
		}
		digest := sha256.Sum256(snap.Data)
		fmt.Fprintf(out, "%s log: %d bytes, digest %x..., MAC %x...\n",
			kind, len(snap.Data), digest[:8], snap.MAC[:8])
	}
	return nil
}

func loadRules(path string) (*rules.Set, error) {
	if path == "" {
		return rules.NewSet([]rules.Rule{
			rules.MustParse("drop udp from any to 192.0.2.0/24 dport 53"),
			rules.MustParse("drop 50% tcp from any to 192.0.2.0/24 dport 80"),
		}, true)
	}
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseRulesFile(string(text))
}

// parseRulesFile accepts plain one-rule-per-line files with an optional
// "default allow|drop" first line and # comments.
func parseRulesFile(text string) (*rules.Set, error) {
	defaultAllow := true
	var rs []rules.Rule
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "default ") {
			switch strings.TrimPrefix(line, "default ") {
			case "allow":
				defaultAllow = true
			case "drop":
				defaultAllow = false
			default:
				return nil, fmt.Errorf("line %d: bad default %q", i+1, line)
			}
			continue
		}
		r, err := rules.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		rs = append(rs, r)
	}
	return rules.NewSet(rs, defaultAllow)
}

// parseCapture reads the -capture sampling spec "1/N" (one packet in N),
// returning N, or 0 for the empty (disabled) spec.
func parseCapture(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "1/%d", &n); err != nil || n < 1 {
		return 0, fmt.Errorf("bad -capture %q: want 1/N with N >= 1", s)
	}
	return n, nil
}

func parseMode(s string) (filter.CopyMode, error) {
	switch s {
	case "native":
		return filter.CopyModeNative, nil
	case "full-copy":
		return filter.CopyModeFull, nil
	case "near-zero-copy":
		return filter.CopyModeNearZero, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

// obsConfig carries the observability flags every run shape honours.
type obsConfig struct {
	metricsAddr   string
	statsInterval time.Duration
}

// buildTelemetry sizes a telemetry registry for an engine run, or returns
// nil when no observability endpoint was requested (the hot path then pays
// only nil checks).
func (oc obsConfig) buildTelemetry(shards int) *telemetry.Telemetry {
	if oc.metricsAddr == "" {
		return nil
	}
	return telemetry.New(telemetry.Config{Shards: shards})
}

// serveTelemetry binds the -metrics-addr HTTP server around tel and
// returns its closer. No-op when addr is empty or tel is nil.
func serveTelemetry(out io.Writer, tel *telemetry.Telemetry, addr string) (func(), error) {
	if addr == "" || tel == nil {
		return func() {}, nil
	}
	srv, err := telemetry.NewServer(tel, addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "telemetry: serving /metrics, /events, /traces, /debug/pprof on %s\n", srv.Addr())
	return func() { srv.Close() }, nil
}

// startStats prints one stats line per interval from the same live
// snapshot path /metrics scrapes, until the returned stop function runs.
func startStats(out io.Writer, every time.Duration, line func() string) func() {
	if every <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprintf(out, "stats: %s\n", line())
			case <-stop:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(stop) }); wg.Wait() }
}

func defaultWord(allow bool) string {
	if allow {
		return "allow"
	}
	return "drop"
}

// victimBase picks the destination prefix traffic should target: the first
// rule's destination, falling back to TEST-NET-1.
func victimBase(set *rules.Set) uint32 {
	for _, r := range set.Rules {
		if !r.Dst.IsAny() {
			return r.Dst.Addr
		}
	}
	return packet.MustParseIP("192.0.2.0")
}

// runEngine drives the live sharded engine: n enclave shards (each holding
// the full rule set) behind a uniform load-balancer programme, fed by
// `producers` concurrent flow generators for `duration`. With churnEvery
// > 0 a control-plane goroutine concurrently exercises the live
// delta-reconfigure path: every interval it pushes a changeset adding
// churnN fresh drop rules and removing the previous interval's batch
// (Engine.ReconfigureNamespaceDelta — applied by the shard workers at
// batch boundaries, so the data plane never stops), and the reinstall
// latencies are reported at the end.
func runEngine(out io.Writer, set *rules.Set, mode filter.CopyMode, n, producers, size int, duration time.Duration, seed int64, churnEvery time.Duration, churnN int, oc obsConfig, ruleShape string, captureEvery int) error {
	filters := make([]*filter.Filter, n)
	for i := range filters {
		e, err := enclave.New(enclave.CodeIdentity{
			Name: "vif-filter", Version: "1.0.0", Config: fmt.Sprintf("shard=%d/%d", i, n), BinarySize: 1 << 20,
		}, enclave.DefaultCostModel())
		if err != nil {
			return err
		}
		f, err := filter.New(e, set, filter.Config{Mode: mode})
		if err != nil {
			return err
		}
		filters[i] = f
	}

	// Uniform rule shares: every shard serves 1/n of each rule's flows —
	// the lb programme a fresh deployment starts from before any traffic
	// measurements skew the distribution.
	shares := make(map[uint32][]float64, set.Len())
	for _, r := range set.Rules {
		row := make([]float64, n)
		for j := range row {
			row[j] = 1 / float64(n)
		}
		shares[r.ID] = row
	}
	bal, err := lb.New(lb.Config{FullSet: set, Shares: shares, N: n})
	if err != nil {
		return err
	}

	tel := oc.buildTelemetry(n)
	// The capture taps ride the burst-module chain, one worker-owned
	// instance per shard, appended after the core stages so each sampled
	// packet records its verdict.
	var taps []*module.Capture
	var modulesFn func(shard int) []module.Module
	if captureEvery > 0 {
		taps = make([]*module.Capture, n)
		modulesFn = func(shard int) []module.Module {
			taps[shard] = module.NewCapture(captureEvery, module.DefaultCaptureBuf)
			return []module.Module{taps[shard]}
		}
	}
	eng, err := engine.New(engine.Config{
		Filters: filters, Route: bal.Route, RouteBatch: bal.RouteBatch,
		Telemetry: tel, Modules: modulesFn,
	})
	if err != nil {
		return err
	}
	closeTel, err := serveTelemetry(out, tel, oc.metricsAddr)
	if err != nil {
		return err
	}
	defer closeTel()
	if err := eng.Start(); err != nil {
		return err
	}
	stopStats := startStats(out, oc.statsInterval, func() string { return eng.Metrics().String() })
	defer stopStats()
	fmt.Fprintf(out, "engine: %d shards, %d producers, rules %d, mode %s\n",
		n, producers, set.Len(), mode)
	fmt.Fprintf(out, "measurement %x (all shards load the same identity)\n",
		filters[0].Enclave().Measurement())

	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := netsim.NewFlowGen(seed+int64(p), victimBase(set), 24)
			// Burst-first producer loop: synthesize a 256-descriptor burst,
			// then hand it to the engine in one InjectBatch call — one
			// routing pass and one ring reservation per (shard, burst)
			// instead of per packet. Unaccepted descriptors were dropped by
			// the balancer or a full ring (counted as lb drops or
			// backpressure), as a NIC drops on ring overflow.
			burst := make([]packet.Descriptor, 256)
			for time.Now().Before(deadline) {
				gen.DescriptorsInto(burst, size)
				eng.InjectBatch(burst)
			}
		}(p)
	}

	// Live churn: the victim keeps re-installing rules mid-attack while the
	// producers hammer the rings — the paper's §IV requirement that rule
	// updates never stall the enclave data path, exercised for real.
	var (
		churnCount int
		churnTotal time.Duration
		churnMax   time.Duration
	)
	if churnEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := victimBase(set)
			var prev []rules.Rule
			nextID := uint32(1 << 20)
			for round := 0; ; round++ {
				time.Sleep(churnEvery)
				if !time.Now().Before(deadline) {
					return
				}
				adds := make([]rules.Rule, churnN)
				for i := range adds {
					// Fresh /24 source prefixes per round: some overlap the
					// generators' source space, so a slice of the live
					// traffic genuinely changes fate each reinstall.
					adds[i] = rules.Rule{
						ID:    nextID,
						Src:   rules.Prefix{Addr: uint32(round*churnN+i) << 8, Len: 24},
						Dst:   rules.Prefix{Addr: base, Len: 24},
						Proto: packet.ProtoUDP,
					}
					nextID++
				}
				d := filter.Delta{Adds: adds, Removes: prev}
				deltas := make([]filter.Delta, n)
				for i := range deltas {
					deltas[i] = d // every shard holds the full set here
				}
				t0 := time.Now()
				if err := eng.ReconfigureNamespaceDelta(0, deltas, nil, nil); err != nil {
					fmt.Fprintf(out, "churn round %d failed: %v\n", round, err)
					return
				}
				lat := time.Since(t0)
				churnCount++
				churnTotal += lat
				if lat > churnMax {
					churnMax = lat
				}
				prev = adds
			}
		}()
	}
	wg.Wait()
	eng.WaitDrained()
	stopStats()
	elapsed := time.Since(start)

	m := eng.Metrics()
	fmt.Fprintf(out, "\nwall-clock: %v, accepted %d descriptors (%.2f Mpps aggregate)\n",
		elapsed.Round(time.Millisecond), m.Accepted, m.PPS/1e6)
	fmt.Fprintf(out, "verdicts: allowed %d, dropped %d; backpressure drops %d\n",
		m.Allowed, m.Dropped, m.Backpressure)
	fmt.Fprintf(out, "aggregate modeled fleet capacity: %.2f Mpps (%.2f Gb/s at %dB) — §IV-B scaling\n",
		eng.AggregateModeledPps(size)/1e6,
		pipeline.ThroughputBps(eng.AggregateModeledPps(size), size)/1e9, size)
	for _, sm := range m.Shards {
		fmt.Fprintf(out, "  shard %d: processed %d (%.2f Mpps), allowed %d, dropped %d, backpressure %d, queue %d, avg batch %.1f, %.0f ns/pkt modeled\n",
			sm.Shard, sm.Processed, sm.PPS/1e6, sm.Allowed, sm.Dropped, sm.Backpressure, sm.QueueDepth, sm.AvgBatch, sm.NsPerPacket)
	}
	fmt.Fprintf(out, "lb drops: %d (balancer discards, before any shard)\n", m.LBDrops)
	if captureEvery > 0 {
		var captured uint64
		for _, tap := range taps {
			captured += tap.Captured()
		}
		fmt.Fprintf(out, "capture: sampled %d of %d processed (1/%d per shard)\n",
			captured, m.Processed, captureEvery)
		for shard, tap := range taps {
			snap := tap.Snapshot()
			if len(snap) == 0 {
				continue
			}
			last := snap[len(snap)-1]
			fmt.Fprintf(out, "  shard %d: %d sampled, ring %d; newest: %s verdict=%s size=%dB\n",
				shard, tap.Captured(), len(snap), last.Flow, last.Verdict, last.Size)
		}
	}
	if ruleShape != "" {
		// Aggregate the per-shard filter counters so shaped engine runs end
		// with the same comparable verdict line the classic pipeline prints.
		var agg filter.Stats
		var aggIdx, aggSets int
		var maxBuild time.Duration
		for _, f := range filters {
			st := f.Stats()
			agg.Allowed += st.Allowed
			agg.Dropped += st.Dropped
			agg.RuleHits += st.RuleHits
			agg.ExactHits += st.ExactHits
			agg.DefaultHits += st.DefaultHits
			idxB, setB, build := f.ClassifierStats()
			aggIdx += idxB
			aggSets += setB
			if build > maxBuild {
				maxBuild = build
			}
		}
		fmt.Fprintf(out, "%s\n", shapeStatsLine(ruleShape, set.Len(), agg, aggIdx, aggSets, maxBuild))
	}
	if churnCount > 0 {
		final := 0
		var idxB, setB int
		var build time.Duration
		if f := eng.Filter(0); f != nil {
			final = f.RuleCount()
			idxB, setB, build = f.ClassifierStats()
		}
		fmt.Fprintf(out, "churn: %d live delta reinstalls (+%d/-%d rules each) under load: avg %.2f ms, max %.2f ms; final rule count %d; classifier: index %d B, sets %d B, last patch %.2f ms\n",
			churnCount, churnN, churnN,
			float64(churnTotal.Microseconds())/float64(churnCount)/1e3,
			float64(churnMax.Microseconds())/1e3, final,
			idxB, setB, float64(build.Microseconds())/1e3)
	}

	// Seal the run as one epoch and print the authenticated log digests a
	// victim would fetch for the bypass audit.
	logs, err := eng.RotateEpoch(0)
	if err != nil {
		return err
	}
	for _, l := range logs {
		inDigest := sha256.Sum256(l.Incoming.Data)
		outDigest := sha256.Sum256(l.Outgoing.Data)
		fmt.Fprintf(out, "epoch %d shard %d: incoming %d bytes digest %x..., outgoing %d bytes digest %x...\n",
			l.Seq, l.Shard, len(l.Incoming.Data), inDigest[:8], len(l.Outgoing.Data), outDigest[:8])
	}
	// Workers promote pending probabilistic flows to exact-match entries at
	// each epoch boundary (the hybrid design's learning step, now on the
	// engine path too).
	var promoted uint64
	for _, sm := range eng.Metrics().Shards {
		promoted += sm.Promoted
	}
	fmt.Fprintf(out, "flows promoted to exact-match at epoch boundary: %d\n", promoted)
	eng.Stop()
	return nil
}

// runOverload is the admission-control scenario: victim 0 is under a
// volumetric flood but carries an explicit admitted-rate cap (the knob an
// operator turns mid-attack), while the quiet victims share the same
// engine uncapped. Every producer interleaves one flood burst per quiet
// burst — a 1:1 offered-load attack — so the printed per-victim SLO lines
// (admitted / throttled / allowed / dropped) show the flood being clipped
// at ingress while the quiet victims keep filtering at full rate.
func runOverload(out io.Writer, mode filter.CopyMode, n, producers, quiet, size int, duration time.Duration, seed int64, oc obsConfig, attackPps float64) error {
	if quiet < 1 || quiet > 249 {
		return fmt.Errorf("-victims %d: overload mode needs 1..249 quiet victims", quiet)
	}
	model := enclave.DefaultCostModel()
	tel := oc.buildTelemetry(n)
	eng, err := engine.New(engine.Config{
		Shards: n, EPCBytes: model.EPCBytes, Telemetry: tel,
		Admission: &engine.AdmissionConfig{},
	})
	if err != nil {
		return err
	}
	closeTel, err := serveTelemetry(out, tel, oc.metricsAddr)
	if err != nil {
		return err
	}
	defer closeTel()

	type victimState struct {
		ns     int
		prefix rules.Prefix
	}
	victims := quiet + 1 // index 0 is the attacked victim
	vmap := lb.NewVictimMap()
	vs := make([]victimState, victims)
	for v := range vs {
		prefix := rules.Prefix{Addr: 10<<24 | uint32(v+1)<<16, Len: 16}
		set, err := rules.NewSet([]rules.Rule{
			rules.MustParse(fmt.Sprintf("drop udp from any to %s dport 53", prefix)),
			rules.MustParse(fmt.Sprintf("drop 50%% tcp from any to %s dport 80", prefix)),
		}, true)
		if err != nil {
			return err
		}
		filters := make([]*filter.Filter, n)
		for i := range filters {
			e, err := enclave.New(enclave.CodeIdentity{
				Name: "vif-filter", Version: "1.0.0",
				Config:     fmt.Sprintf("overload victim=%d shard=%d/%d", v, i, n),
				BinarySize: 1 << 20,
			}, model)
			if err != nil {
				return err
			}
			f, err := filter.New(e, set, filter.Config{Mode: mode})
			if err != nil {
				return err
			}
			filters[i] = f
		}
		bal, err := uniformBalancer(set, n)
		if err != nil {
			return err
		}
		nc := engine.NamespaceConfig{Filters: filters, Route: bal.Route, RouteBatch: bal.RouteBatch}
		if v == 0 {
			nc.AdmitPps = attackPps
		}
		ns, err := eng.AttachNamespace(nc)
		if err != nil {
			return err
		}
		if err := vmap.Add(prefix, uint16(ns)); err != nil {
			return err
		}
		vs[v] = victimState{ns: ns, prefix: prefix}
	}
	if err := eng.Start(); err != nil {
		return err
	}
	stopStats := startStats(out, oc.statsInterval, func() string { return eng.Metrics().String() })
	defer stopStats()
	fmt.Fprintf(out, "overload: %d shards, %d producers, 1 attacked + %d quiet victims, attacked cap %.0f pps, mode %s\n",
		n, producers, quiet, attackPps, mode)

	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gens := make([]*netsim.FlowGen, victims)
			for v := range gens {
				gens[v] = netsim.NewFlowGen(seed+int64(p*victims+v), vs[v].prefix.Addr, int(vs[v].prefix.Len))
			}
			flood := make([]packet.Descriptor, 256)
			burst := make([]packet.Descriptor, 256)
			for v := 1; time.Now().Before(deadline); v++ {
				if v >= victims {
					v = 1
				}
				// The flood rides ahead of every quiet burst: same
				// offered load as all quiet victims combined.
				gens[0].DescriptorsInto(flood, size)
				vmap.Stamp(flood)
				eng.InjectBatch(flood)
				gens[v].DescriptorsInto(burst, size)
				vmap.Stamp(burst)
				eng.InjectBatch(burst)
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()
	stopStats()
	elapsed := time.Since(start)

	m := eng.Metrics()
	fmt.Fprintf(out, "\nwall-clock: %v, accepted %d descriptors (%.2f Mpps aggregate), throttled %d at ingress\n",
		elapsed.Round(time.Millisecond), m.Accepted, m.PPS/1e6, m.Throttled)
	// Per-victim SLO lines: what each tenant's operator dashboard reads.
	for v, st := range vs {
		var nm engine.NamespaceMetrics
		for _, cand := range m.Namespaces {
			if cand.NS == st.ns {
				nm = cand
				break
			}
		}
		role, capLbl := "quiet   ", "uncapped"
		if v == 0 {
			role = "attacked"
			capLbl = fmt.Sprintf("cap %.0f pps", nm.AdmitRatePps)
		}
		fmt.Fprintf(out, "%s ns=%d %v: admitted %d, throttled %d (%s), allowed %d, dropped %d\n",
			role, st.ns, st.prefix, nm.Admitted, nm.Throttled, capLbl, nm.Allowed, nm.Dropped)
	}
	eng.Stop()
	return nil
}

// uniformBalancer builds the lb programme a fresh fleet starts from:
// every shard serves 1/n of each rule's flows.
func uniformBalancer(set *rules.Set, n int) (*lb.Balancer, error) {
	shares := make(map[uint32][]float64, set.Len())
	for _, r := range set.Rules {
		row := make([]float64, n)
		for j := range row {
			row[j] = 1 / float64(n)
		}
		shares[r.ID] = row
	}
	return lb.New(lb.Config{FullSet: set, Shares: shares, N: n})
}

// runMultiVictim drives the shared multi-victim engine: one fleet of n
// enclave shards concurrently serving `victims` independent rule
// namespaces. Each victim v owns the prefix 10.v.0.0/16 with its own
// synthesized rule set (drop DNS, drop half of HTTP) and its own uniform
// balancer programme; producers generate each victim's traffic mix and
// stamp descriptors through the dst-prefix → namespace map exactly as the
// untrusted ingress fabric would. The run ends with per-victim verdicts,
// EPC budget shares, and one sealed epoch per victim — rotated
// independently, the way each victim's audit cadence would drive it.
func runMultiVictim(out io.Writer, mode filter.CopyMode, n, producers, victims, size int, duration time.Duration, seed int64, oc obsConfig) error {
	if victims > 250 {
		return fmt.Errorf("-victims %d: demo prefixes support at most 250", victims)
	}
	model := enclave.DefaultCostModel()
	tel := oc.buildTelemetry(n)
	eng, err := engine.New(engine.Config{Shards: n, EPCBytes: model.EPCBytes, Telemetry: tel})
	if err != nil {
		return err
	}
	closeTel, err := serveTelemetry(out, tel, oc.metricsAddr)
	if err != nil {
		return err
	}
	defer closeTel()

	type victimState struct {
		ns     int
		prefix rules.Prefix
	}
	vmap := lb.NewVictimMap()
	vs := make([]victimState, victims)
	for v := range vs {
		prefix := rules.Prefix{Addr: 10<<24 | uint32(v+1)<<16, Len: 16}
		set, err := rules.NewSet([]rules.Rule{
			rules.MustParse(fmt.Sprintf("drop udp from any to %s dport 53", prefix)),
			rules.MustParse(fmt.Sprintf("drop 50%% tcp from any to %s dport 80", prefix)),
		}, true)
		if err != nil {
			return err
		}
		filters := make([]*filter.Filter, n)
		for i := range filters {
			e, err := enclave.New(enclave.CodeIdentity{
				Name: "vif-filter", Version: "1.0.0",
				Config:     fmt.Sprintf("victim=%d shard=%d/%d", v, i, n),
				BinarySize: 1 << 20,
			}, model)
			if err != nil {
				return err
			}
			f, err := filter.New(e, set, filter.Config{Mode: mode})
			if err != nil {
				return err
			}
			filters[i] = f
		}
		bal, err := uniformBalancer(set, n)
		if err != nil {
			return err
		}
		ns, err := eng.AttachNamespace(engine.NamespaceConfig{
			Filters: filters, Route: bal.Route, RouteBatch: bal.RouteBatch,
		})
		if err != nil {
			return err
		}
		if err := vmap.Add(prefix, uint16(ns)); err != nil {
			return err
		}
		vs[v] = victimState{ns: ns, prefix: prefix}
	}
	if err := eng.Start(); err != nil {
		return err
	}
	stopStats := startStats(out, oc.statsInterval, func() string { return eng.Metrics().String() })
	defer stopStats()
	fmt.Fprintf(out, "engine: %d shards, %d producers, %d victim namespaces, mode %s\n",
		n, producers, victims, mode)
	epcShares := eng.EPCShares()
	var epcTotal int
	for _, s := range epcShares {
		epcTotal += s
	}
	fmt.Fprintf(out, "EPC budget: %.1f MB per shard machine apportioned across %d victims (shares sum %.1f MB)\n",
		float64(eng.EPCBytes())/1e6, victims, float64(epcTotal)/1e6)

	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// One generator per victim so every namespace sees its own
			// traffic mix; bursts rotate victims and are stamped through
			// the dst-prefix map before the batched injection.
			gens := make([]*netsim.FlowGen, victims)
			for v := range gens {
				gens[v] = netsim.NewFlowGen(seed+int64(p*victims+v), vs[v].prefix.Addr, int(vs[v].prefix.Len))
			}
			burst := make([]packet.Descriptor, 256)
			for v := 0; time.Now().Before(deadline); v = (v + 1) % victims {
				gens[v].DescriptorsInto(burst, size)
				vmap.Stamp(burst)
				eng.InjectBatch(burst)
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()
	stopStats()
	elapsed := time.Since(start)

	m := eng.Metrics()
	fmt.Fprintf(out, "\nwall-clock: %v, accepted %d descriptors (%.2f Mpps aggregate)\n",
		elapsed.Round(time.Millisecond), m.Accepted, m.PPS/1e6)
	fmt.Fprintf(out, "verdicts: allowed %d, dropped %d; backpressure drops %d, lb drops %d, ns drops %d\n",
		m.Allowed, m.Dropped, m.Backpressure, m.LBDrops, m.NSDrops)
	for _, sm := range m.Shards {
		fmt.Fprintf(out, "  shard %d: processed %d (%.2f Mpps), allowed %d, dropped %d, avg batch %.1f, %.0f ns/pkt modeled\n",
			sm.Shard, sm.Processed, sm.PPS/1e6, sm.Allowed, sm.Dropped, sm.AvgBatch, sm.NsPerPacket)
	}

	// Per-victim accounting and one independently sealed epoch each: the
	// digests are what each victim would fetch for its own bypass audit.
	// Rotation runs first so the per-victim line reflects the promotions
	// the epoch boundary performed.
	for _, v := range vs {
		logs, err := eng.RotateEpoch(v.ns)
		if err != nil {
			return err
		}
		var nm engine.NamespaceMetrics
		for _, cand := range eng.Metrics().Namespaces {
			if cand.NS == v.ns {
				nm = cand
				break
			}
		}
		fmt.Fprintf(out, "victim ns=%d %v: processed %d, allowed %d, dropped %d, promoted %d, EPC share %.1f MB, paging %.2f\n",
			v.ns, v.prefix, nm.Processed, nm.Allowed, nm.Dropped, nm.Promoted,
			float64(nm.EPCShareBytes)/1e6, nm.PagingPressure)
		for _, l := range logs {
			outDigest := sha256.Sum256(l.Outgoing.Data)
			fmt.Fprintf(out, "  epoch %d shard %d: outgoing %d bytes digest %x...\n",
				l.Seq, l.Shard, len(l.Outgoing.Data), outDigest[:8])
		}
	}

	// Tenants leave: detach every victim and show the engine-side
	// tombstone history an operator of a long-lived shared engine audits
	// after the fact — each entry is the victim's exact final accounting.
	for _, v := range vs {
		if _, err := eng.DetachNamespace(v.ns); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "\ntombstones (detached victims' final counters, oldest first, retained %d):\n", len(eng.Tombstones()))
	for _, tb := range eng.Tombstones() {
		fmt.Fprintf(out, "  tombstone ns=%d: processed %d, allowed %d, dropped %d, epochs %d, EPC share was %.1f MB\n",
			tb.Final.NS, tb.Final.Processed, tb.Final.Allowed, tb.Final.Dropped,
			tb.Final.Epochs, float64(tb.Final.EPCShareBytes)/1e6)
	}
	eng.Stop()
	return nil
}
