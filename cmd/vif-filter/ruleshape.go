package main

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// shapeNames is the -rule-shape vocabulary, kept in one place so the flag
// help and the error message cannot drift apart.
const shapeNames = "prefix | 5tuple | reflection"

// shapeRules synthesizes a k-rule drop set in one of the named workload
// shapes, so the demonstrator can be pointed at the same rule-table
// geometries the benchmarks sweep without hand-writing rule files:
//
//   - prefix: random source /24s toward one victim /24, UDP — the paper's
//     Figure 3a shape, where matching cost tracks the rule footprint;
//   - 5tuple: fully specified rules (src /32, dst /32, both ports, proto
//     alternating UDP/TCP) — every attribute constrained, the
//     exact-match-like extreme;
//   - reflection: a globally unique dst /28 carpet per rule, sources from
//     a 256-entry /16 vocabulary, source ports cycling the classic
//     reflection services, dst port wildcard — the shape that piles
//     candidates onto shared trie nodes and that the compiled classifier
//     matches in rule-count-invariant time.
func shapeRules(shape string, k int, seed int64) (*rules.Set, error) {
	if k < 1 {
		return nil, fmt.Errorf("-rule-count %d: need at least 1", k)
	}
	rng := rand.New(rand.NewSource(seed))
	rs := make([]rules.Rule, k)
	switch shape {
	case "prefix":
		dst := rules.MustParsePrefix("192.0.2.0/24")
		for i := range rs {
			rs[i] = rules.Rule{
				Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
				Dst:   dst,
				Proto: packet.ProtoUDP,
			}
		}
	case "5tuple":
		for i := range rs {
			proto := packet.ProtoUDP
			if i%2 == 1 {
				proto = packet.ProtoTCP
			}
			rs[i] = rules.Rule{
				Src:     rules.Prefix{Addr: rng.Uint32(), Len: 32},
				Dst:     rules.Prefix{Addr: 0xC0000200 | uint32(i)&0xFF, Len: 32},
				SrcPort: rules.Port(uint16(rng.Intn(60000) + 1)),
				DstPort: rules.Port(53),
				Proto:   proto,
			}
		}
	case "reflection":
		if k >= 1<<20 {
			return nil, fmt.Errorf("-rule-count %d: reflection's /28 carpet supports at most %d rules", k, 1<<20-1)
		}
		sports := []uint16{53, 123, 389, 1900, 11211}
		for i := range rs {
			rs[i] = rules.Rule{
				Src:     rules.Prefix{Addr: 0x64000000 | uint32(i%256)<<16, Len: 16},
				Dst:     rules.Prefix{Addr: 0x0A000000 | uint32(i)<<4, Len: 28},
				SrcPort: rules.Port(sports[i%len(sports)]),
				Proto:   packet.ProtoUDP,
			}
		}
	default:
		return nil, fmt.Errorf("unknown -rule-shape %q (want %s)", shape, shapeNames)
	}
	return rules.NewSet(rs, true)
}

// shapeStatsLine renders the per-shape verdict counters appended to the
// end-of-run stats so shaped runs are comparable at a glance (and by CI
// substring checks), plus the installed classifier's table footprint —
// direct-index translation bytes vs interval/membership-set bytes — and
// the wall time its most recent compile (or delta patch) took.
func shapeStatsLine(shape string, k int, st filter.Stats, idxBytes, setBytes int, build time.Duration) string {
	return fmt.Sprintf("rule-shape %s: %d rules; verdicts: allowed %d, dropped %d (rule hits %d, exact hits %d, default %d); classifier: index %d B, sets %d B, build %.2f ms",
		shape, k, st.Allowed, st.Dropped, st.RuleHits, st.ExactHits, st.DefaultHits,
		idxBytes, setBytes, float64(build.Microseconds())/1e3)
}
