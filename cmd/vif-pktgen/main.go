// Command vif-pktgen is the traffic-generator counterpart of vif-filter —
// the pktgen-dpdk stand-in of the paper's testbed. It synthesizes frames
// for a victim prefix (mixed legitimate and attack traffic) and writes
// them to a file in a simple length-prefixed format, or prints generation
// statistics.
//
//	vif-pktgen -count 100000 -size 64 -attack 0.5 -out traffic.bin
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/innetworkfiltering/vif/internal/netsim"
	"github.com/innetworkfiltering/vif/internal/packet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vif-pktgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vif-pktgen", flag.ContinueOnError)
	var (
		count  = fs.Int("count", 10000, "number of frames")
		size   = fs.Int("size", 64, "frame size in bytes")
		attack = fs.Float64("attack", 0.5, "fraction of frames that are DNS-amplification attack traffic")
		victim = fs.String("victim", "192.0.2.0/24", "victim prefix (a.b.c.d/len)")
		outPth = fs.String("out", "", "output file (length-prefixed frames); empty = stats only")
		seed   = fs.Int64("seed", 1, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *attack < 0 || *attack > 1 {
		return fmt.Errorf("attack fraction %v outside [0,1]", *attack)
	}
	addr, plenStr, _ := cutPrefix(*victim)
	base, err := packet.ParseIP(addr)
	if err != nil {
		return err
	}
	plen := 24
	if plenStr != "" {
		if _, err := fmt.Sscanf(plenStr, "%d", &plen); err != nil {
			return fmt.Errorf("bad prefix length %q", plenStr)
		}
	}

	var w *bufio.Writer
	if *outPth != "" {
		f, err := os.Create(*outPth)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
		defer w.Flush()
	}

	gen := netsim.NewFlowGen(*seed, base, plen)
	frame := make([]byte, *size)
	attacks := 0
	var bytesOut int64
	acc := 0.0 // fractional accumulator: interleaves attack frames evenly
	// Generate in engine-sized bursts: one DescriptorsInto call synthesizes
	// a whole batch of flows (the same burst path vif-filter's producers
	// inject through), then each descriptor is marked, serialized, and
	// written. The burst loop is what keeps pktgen's per-frame overhead a
	// slice store instead of a generator call.
	const burstSize = 256
	burst := make([]packet.Descriptor, burstSize)
	for done := 0; done < *count; {
		n := *count - done
		if n > burstSize {
			n = burstSize
		}
		gen.DescriptorsInto(burst[:n], *size)
		for i := 0; i < n; i++ {
			tuple := burst[i].Tuple
			if acc += *attack; acc >= 1 {
				acc--
				// DNS amplification: source port 53 UDP floods.
				tuple.SrcPort, tuple.DstPort, tuple.Proto = 53, 53, packet.ProtoUDP
				attacks++
			}
			packet.SynthesizeInto(frame, tuple)
			if w != nil {
				var hdr [4]byte
				binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
				if _, err := w.Write(hdr[:]); err != nil {
					return err
				}
				if _, err := w.Write(frame); err != nil {
					return err
				}
			}
			bytesOut += int64(len(frame))
		}
		done += n
	}
	fmt.Fprintf(stdout, "generated %d frames (%d attack, %d legitimate), %d bytes",
		*count, attacks, *count-attacks, bytesOut)
	if *outPth != "" {
		fmt.Fprintf(stdout, " -> %s", *outPth)
	}
	fmt.Fprintln(stdout)
	return nil
}

func cutPrefix(s string) (addr, plen string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}
