package main

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
)

func TestRunWritesParsableFrames(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "traffic.bin")
	var stdout bytes.Buffer
	err := run([]string{
		"-count", "500", "-size", "128", "-attack", "0.5", "-out", out,
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "generated 500 frames") {
		t.Fatalf("stdout: %s", stdout.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	frames, attacks := 0, 0
	for off := 0; off < len(data); {
		if off+4 > len(data) {
			t.Fatal("truncated length prefix")
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += 4
		if off+n > len(data) {
			t.Fatal("truncated frame")
		}
		tuple, err := packet.Parse(data[off : off+n])
		if err != nil {
			t.Fatalf("frame %d unparsable: %v", frames, err)
		}
		if tuple.SrcPort == 53 && tuple.Proto == packet.ProtoUDP {
			attacks++
		}
		off += n
		frames++
	}
	if frames != 500 {
		t.Fatalf("frames = %d", frames)
	}
	if attacks < 200 || attacks > 300 {
		t.Fatalf("attack frames = %d, want ≈250", attacks)
	}
}

func TestRunStatsOnly(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{"-count", "100"}, &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "generated 100 frames") {
		t.Fatalf("stdout: %s", stdout.String())
	}
}

func TestRunValidation(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{"-attack", "1.5"}, &stdout); err == nil {
		t.Fatal("attack > 1 accepted")
	}
	if err := run([]string{"-victim", "garbage"}, &stdout); err == nil {
		t.Fatal("garbage victim accepted")
	}
}
