package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout redirected to a temp file.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, []string{"-list"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig3a", "fig8", "fig11", "table1", "attest"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %q", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, []string{"-run", "table3", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "AMS-IX") || !strings.Contains(out, "IXPN Lagos") {
		t.Fatalf("table3 output incomplete:\n%s", out)
	}
}

func TestRunCommaSeparated(t *testing.T) {
	out, err := capture(t, []string{"-run", "fig3b,attest"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig3b") || !strings.Contains(out, "attest") {
		t.Fatalf("multi-run output incomplete:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := capture(t, []string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
