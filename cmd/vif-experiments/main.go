// Command vif-experiments regenerates the tables and figures of the VIF
// paper's evaluation (§V, §VI-C, and the appendices).
//
// Usage:
//
//	vif-experiments                 # run everything, quick scale
//	vif-experiments -run fig8       # one experiment
//	vif-experiments -run fig11 -full -seed 7
//	vif-experiments -list
//
// Quick mode (the default) scales down the slowest sweeps; -full runs at
// paper scale. Every experiment is deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/innetworkfiltering/vif/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vif-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("vif-experiments", flag.ContinueOnError)
	var (
		runID = fs.String("run", "", "experiment id to run (default: all); see -list")
		full  = fs.Bool("full", false, "paper-scale sweeps instead of quick mode")
		seed  = fs.Int64("seed", 1, "seed for all random draws")
		list  = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(out, "%-8s %s\n", r.ID, r.Desc)
		}
		return nil
	}

	cfg := experiments.Config{Quick: !*full, Seed: *seed}
	var runners []experiments.Runner
	if *runID == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			runners = append(runners, r)
		}
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Fprintf(out, "VIF evaluation reproduction — %d experiment(s), %s mode, seed %d\n\n",
		len(runners), mode, *seed)
	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Fprint(out, res.Render())
		fmt.Fprintf(out, "(%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
