# VIF build/test/bench entry points. `make bench` refreshes
# BENCH_engine.json so the engine's scaling trajectory accumulates per PR;
# `make bench-filter` refreshes BENCH_filter.json, the scalar-vs-batch
# hot-path comparison (guarded at ≥2x batch speedup).

GO ?= go

.PHONY: all build vet test race bench bench-filter

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	./scripts/bench_engine.sh BENCH_engine.json

bench-filter:
	./scripts/bench_filter.sh BENCH_filter.json
