# VIF build/test/bench entry points. `make bench` refreshes
# BENCH_engine.json — wall-clock multi-producer shard scaling, the
# injection-path comparison, multi-victim namespace scaling, and the
# Reconfigure latency sweep — and enforces the perf gates (InjectBatch ≥2x
# scalar Inject always; 4-shard wall Mpps > 1-shard on hosts with ≥4 CPUs;
# 4-namespace wall Mpps ≥ 0.7x single-namespace always).
# `make bench-multivictim` runs just the namespace-scaling slice of the
# same script; `make bench-telemetry` runs just the observability
# overhead slice (telemetry-on wall Mpps ≥ 0.97x telemetry-off);
# `make bench-isolation` runs just the overload-isolation slice (quiet
# victims' wall Mpps with an admission-capped attacked neighbor ≥ 0.9x
# their solo figure); `make bench-pipeline` runs just the module-pipeline
# overhead slice (decomposed chain wall Mpps ≥ 0.97x the legacy fused
# loop).
# `make bench-filter` refreshes BENCH_filter.json — the scalar-vs-batch
# hot-path comparison (guarded at ≥2x batch speedup) plus the compiled
# classifier's rule-count-invariance sweep (100k-rule ns/pkt guarded at
# ≤2x its own 1k figure, with the trie scan path recorded alongside).
# `make bench-classify` runs just that flatness slice.
# `make bench-classify-probe` runs just the probe comparison — per-packet
# binary search vs chunked direct-index tables probed breadth-first over
# bursts at 100k rules (guarded at ≥2x probe speedup).

GO ?= go

.PHONY: all build vet test race bench bench-filter bench-classify bench-classify-probe bench-multivictim bench-telemetry bench-isolation bench-pipeline docs-check

all: build vet test docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

bench:
	./scripts/bench_engine.sh BENCH_engine.json

bench-filter:
	./scripts/bench_filter.sh BENCH_filter.json

bench-classify:
	ONLY=classify ./scripts/bench_filter.sh BENCH_classify.json

bench-classify-probe:
	ONLY=classify-probe ./scripts/bench_filter.sh BENCH_classify_probe.json

bench-multivictim:
	ONLY=multivictim ./scripts/bench_engine.sh BENCH_multivictim.json

bench-telemetry:
	ONLY=telemetry ./scripts/bench_engine.sh BENCH_telemetry.json

bench-isolation:
	ONLY=isolation ./scripts/bench_engine.sh BENCH_isolation.json

bench-pipeline:
	ONLY=pipeline ./scripts/bench_engine.sh BENCH_pipeline.json

# Fails when an internal package lacks a package comment, a load-bearing
# package lacks its doc.go contract, or docs/ files go missing/unlinked.
docs-check:
	./scripts/check_docs.sh
