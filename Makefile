# VIF build/test/bench entry points. `make bench` refreshes
# BENCH_engine.json so the engine's scaling trajectory accumulates per PR.

GO ?= go

.PHONY: all build vet test race bench

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	./scripts/bench_engine.sh BENCH_engine.json
