# VIF build/test/bench entry points. `make bench` refreshes
# BENCH_engine.json — wall-clock multi-producer shard scaling plus the
# injection-path comparison — and enforces the perf gates (InjectBatch ≥2x
# scalar Inject always; 4-shard wall Mpps > 1-shard on hosts with ≥2 CPUs).
# `make bench-filter` refreshes BENCH_filter.json, the scalar-vs-batch
# hot-path comparison (guarded at ≥2x batch speedup).

GO ?= go

.PHONY: all build vet test race bench bench-filter

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	./scripts/bench_engine.sh BENCH_engine.json

bench-filter:
	./scripts/bench_filter.sh BENCH_filter.json
